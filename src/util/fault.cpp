#include "util/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::util::fault {

namespace detail {
std::atomic<bool> any_armed{false};
std::atomic<std::uint64_t> round_clock{0};
}  // namespace detail

namespace {

/// Most recent firings retained by events(); older ones are dropped so a
/// long chaotic soak cannot grow the log without bound.
constexpr std::size_t kMaxEvents = 4096;

/// FNV-1a over the site name — folds the name into the per-site stream
/// seed so two sites in one plan get independent draw sequences.
std::uint64_t fnv1a64_str(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct Site {
  std::string name;
  std::uint64_t after = 0;
  double prob = 1.0;
  std::uint64_t limit = 0;  // 0 = unlimited
  /// Dedicated probabilistic stream: one draw per eligible hit, consumed
  /// in hit order under the registry lock, so the firing schedule is a
  /// pure function of (spec, seed).
  rng::Xoshiro256 stream;
  /// Hit bookkeeping lives in the metrics registry ("fault.<site>.hits" /
  /// ".fired"), so armed-site activity shows up in --metrics snapshots
  /// for free; Counter::add has the same fetch_add semantics an inline
  /// atomic would, so the after-k arming stays exact. The obs primitives
  /// are functional at every COBRA_OBS_LEVEL — this is semantic counting,
  /// not telemetry.
  obs::Counter* hit_count;
  obs::Counter* fire_count;

  Site(const FaultSpec& spec, std::uint64_t seed)
      : name(spec.site),
        after(spec.after),
        prob(spec.prob),
        limit(spec.limit),
        stream(rng::derive_seed(seed, fnv1a64_str(spec.site))),
        hit_count(&obs::registry().counter("fault." + name + ".hits")),
        fire_count(&obs::registry().counter("fault." + name + ".fired")) {}
};

/// Registry storage. Sites are appended under the lock and never removed
/// while armed (disarm_all clears wholesale), so the lock-free query path
/// only needs a stable snapshot of the deque — which a mutex-guarded
/// read provides; the query takes the lock too, but only AFTER the
/// any_armed gate, i.e. never in a fault-free run.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::deque<Site>& registry() {
  static std::deque<Site> sites;
  return sites;
}

std::deque<FaultEvent>& event_log() {
  static std::deque<FaultEvent> log;
  return log;
}

/// Map one 64-bit draw to a double in [0, 1) — the standard 53-bit ldexp
/// construction, identical to rng/distributions' uniform path.
double unit_uniform(std::uint64_t draw) noexcept {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

/// Record a firing under the registry lock and mirror it to the trace
/// sink when one is armed. trace_fault bypasses the trace.write fault
/// site by design, so the fault log itself is never a fault victim.
void record_firing(Site& s, std::uint64_t hit, std::uint64_t fire) {
  auto& log = event_log();
  log.push_back(FaultEvent{s.name, hit, fire, current_round()});
  if (log.size() > kMaxEvents) log.pop_front();
  if (obs::trace_enabled()) {
    obs::trace_fault(s.name, hit, fire, current_round());
  }
}

/// Strict single-entry parser for `site[@after][%prob][#limit]`; suffixes
/// may appear in any order but at most once each. Throws
/// std::invalid_argument naming the token.
FaultSpec parse_spec(std::string_view entry) {
  const auto bad = [&entry](const char* why) -> std::invalid_argument {
    return std::invalid_argument("malformed fault entry '" +
                                 std::string(entry) + "' (" + why +
                                 "; want site[@after][%prob][#limit])");
  };
  FaultSpec spec;
  const std::size_t first = entry.find_first_of("@%#");
  spec.site = std::string(entry.substr(0, first));
  if (spec.site.empty()) throw bad("empty site name");
  bool saw_after = false, saw_prob = false, saw_limit = false;
  std::size_t pos = first;
  while (pos != std::string_view::npos && pos < entry.size()) {
    const char tag = entry[pos];
    const std::size_t next = entry.find_first_of("@%#", pos + 1);
    const std::string value(entry.substr(
        pos + 1, (next == std::string_view::npos ? entry.size() : next) -
                     pos - 1));
    if (value.empty()) throw bad("empty suffix value");
    if (tag == '@' && saw_after) throw bad("duplicate @after");
    if (tag == '%' && saw_prob) throw bad("duplicate %prob");
    if (tag == '#' && saw_limit) throw bad("duplicate #limit");
    std::size_t consumed = 0;
    try {
      if (tag == '@') {
        spec.after = std::stoull(value, &consumed);
        saw_after = true;
      } else if (tag == '%') {
        spec.prob = std::stod(value, &consumed);
        saw_prob = true;
      } else {
        spec.limit = std::stoull(value, &consumed);
        saw_limit = true;
      }
    } catch (const std::exception&) {
      throw bad("non-numeric suffix value");
    }
    if (consumed != value.size()) throw bad("trailing junk in suffix value");
    pos = next;
  }
  if (spec.prob < 0.0 || spec.prob > 1.0) throw bad("prob outside [0, 1]");
  return spec;
}

/// Render a double probability minimally ("%g" — round-trips the values
/// plans actually use and keeps specs short).
std::string render_prob(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

}  // namespace

std::string FaultSpec::render() const {
  std::string out = site;
  out += '@';
  out += std::to_string(after);
  if (prob < 1.0) {
    out += '%';
    out += render_prob(prob);
  }
  if (limit != 0) {
    out += '#';
    out += std::to_string(limit);
  }
  return out;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view entry = text.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    plan.specs.push_back(parse_spec(entry));
  }
  return plan;
}

std::string FaultPlan::render() const {
  std::string out;
  for (const FaultSpec& spec : specs) {
    if (!out.empty()) out += ",";
    out += spec.render();
  }
  return out;
}

void arm_spec(const FaultSpec& spec, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& sites = registry();
  for (Site& s : sites) {
    if (s.name == spec.site) {
      s = Site(spec, seed);  // re-arm: fresh counters + stream
      s.hit_count->set(0);
      s.fire_count->set(0);
      detail::any_armed.store(true, std::memory_order_relaxed);
      return;
    }
  }
  sites.emplace_back(spec, seed);
  // The obs counters outlive disarm_all (metrics registrations persist),
  // so a re-created site must start its counts fresh.
  sites.back().hit_count->set(0);
  sites.back().fire_count->set(0);
  detail::any_armed.store(true, std::memory_order_relaxed);
}

void arm(std::string_view site, std::uint64_t after) {
  FaultSpec spec;
  spec.site = std::string(site);
  spec.after = after;
  arm_spec(spec, 0);
}

std::size_t arm_plan(const FaultPlan& plan) {
  for (const FaultSpec& spec : plan.specs) arm_spec(spec, plan.seed);
  return plan.specs.size();
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  event_log().clear();
  detail::round_clock.store(0, std::memory_order_relaxed);
  detail::any_armed.store(false, std::memory_order_relaxed);
}

bool should_fail_slow(std::string_view site) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Site& s : registry()) {
    if (s.name != site) continue;
    const std::uint64_t hit = s.hit_count->add(1);  // returns PREVIOUS count
    if (hit < s.after) return false;
    if (s.limit != 0 && s.fire_count->value() >= s.limit) return false;
    if (s.prob < 1.0) {
      // One stream draw per eligible hit, in hit order (we hold the
      // registry lock), so which hit indices fire is deterministic.
      if (unit_uniform(s.stream()) >= s.prob) return false;
    }
    const std::uint64_t fire = s.fire_count->add(1) + 1;
    record_firing(s, hit, fire);
    return true;
  }
  return false;
}

std::uint64_t hits(std::string_view site) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  // Thin wrapper over the registry-backed counter — the pre-obs accessor,
  // kept so call sites and tests don't care where the count lives.
  for (const Site& s : registry()) {
    if (s.name == site) return s.hit_count->value();
  }
  return 0;
}

std::uint64_t fired(std::string_view site) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Site& s : registry()) {
    if (s.name == site) return s.fire_count->value();
  }
  return 0;
}

std::size_t arm_from_env() {
  const char* env = std::getenv("COBRA_FAULT");
  if (env == nullptr || *env == '\0') return 0;
  std::uint64_t seed = 0;
  if (const char* seed_env = std::getenv("COBRA_FAULT_SEED");
      seed_env != nullptr && *seed_env != '\0') {
    try {
      std::size_t consumed = 0;
      seed = std::stoull(seed_env, &consumed);
      if (consumed != std::string(seed_env).size()) {
        throw std::invalid_argument("trailing junk");
      }
    } catch (const std::exception&) {
      std::cerr << "[fault] WARNING: ignoring malformed COBRA_FAULT_SEED '"
                << seed_env << "' (want u64); using 0\n";
      seed = 0;
    }
  }
  // Entry-by-entry with skip-and-warn (not all-or-nothing): a typo in one
  // entry of an injection list must not silently disable the others.
  std::size_t armed = 0;
  const std::string text(env);
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    try {
      arm_spec(parse_spec(entry), seed);
      ++armed;
    } catch (const std::invalid_argument&) {
      std::cerr << "[fault] WARNING: ignoring malformed COBRA_FAULT entry '"
                << entry << "' (want site[@after][%prob][#limit])\n";
    }
  }
  return armed;
}

std::size_t arm_plan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open fault plan file '" + path + "'");
  }
  FaultPlan plan;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    const std::size_t stop = line.find_last_not_of(" \t\r");
    const std::string_view body =
        std::string_view(line).substr(start, stop - start + 1);
    if (body.front() == '#') continue;  // comment
    if (body.substr(0, 5) == "seed=") {
      const std::string value(body.substr(5));
      std::size_t consumed = 0;
      try {
        plan.seed = std::stoull(value, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != value.size()) {
        throw std::invalid_argument("malformed seed line '" +
                                    std::string(body) + "' in '" + path + "'");
      }
      continue;
    }
    const FaultPlan specs = FaultPlan::parse(body);
    for (const FaultSpec& spec : specs.specs) plan.specs.push_back(spec);
  }
  return arm_plan(plan);
}

std::vector<std::string> armed_sites() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const Site& s : registry()) {
    FaultSpec spec;
    spec.site = s.name;
    spec.after = s.after;
    spec.prob = s.prob;
    spec.limit = s.limit;
    out.push_back(spec.render());
  }
  return out;
}

std::vector<FaultEvent> events() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return {event_log().begin(), event_log().end()};
}

}  // namespace cobra::util::fault
