#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file fault.hpp
/// Fault-injection registry — the failure-testing backbone of the
/// resilience layer, grown into a seedable chaos subsystem. Code that can
/// fail in production (allocation on the dense-frontier switch, snapshot
/// I/O, bench child startup) declares a named *site*; tests, the sweep
/// driver, and the cobra_chaos fuzzer *arm* sites to fail, and the site's
/// `should_fail()` query tells the code to take its degradation path
/// exactly as a real failure would.
///
/// Design constraints, in priority order:
///
///   1. ZERO cost when disabled. Sites sit on hot paths (the frontier
///      engine's representation switch), so the disabled check is one
///      relaxed load of a global atomic flag that is false unless
///      something armed a fault — no string compare, no map lookup, no
///      lock. Arming is test/startup-time only and may be slow.
///   2. Deterministic. A site armed with `after = k` fails on its k-th
///      hit (0-based) and every later hit; a site armed with a firing
///      probability draws from a per-site xoshiro256++ stream seeded from
///      the plan seed, one draw per eligible hit IN HIT ORDER (under the
///      registry lock), so the SET of firing hit indices is a pure
///      function of (plan, seed) — reproducible regardless of which
///      threads produced the hits.
///   3. Thread-safe queries. Sites are hit from pool workers; the hit
///      counter is atomic and arming mutates the registry only under its
///      own lock (callers must not arm concurrently with queries of the
///      same test — the normal arm-then-run pattern).
///
/// Fault-plan grammar (one entry; comma-separate for lists):
///
///   site[@after][%prob][#limit]
///
///   @after   first eligible hit, 0-based (default 0: every hit eligible)
///   %prob    firing probability per eligible hit in [0, 1] (default 1:
///            deterministic); draws come from the plan-seeded stream
///   #limit   maximum number of firings, after which the site goes
///            dormant (default 0 = unlimited)
///
/// e.g. "checkpoint.write@3,rng.block_refill%0.25#2" — the 4th and later
/// snapshot writes fail; each RNG block refill degrades with probability
/// 1/4, at most twice.
///
/// Arming paths:
///   * programmatic: `arm("frontier.dense_alloc", 2)` or
///     `arm_plan(FaultPlan::parse("a@1%0.5,b#3"), seed)` in a test;
///   * environment: `COBRA_FAULT="<plan>"` (+ optional `COBRA_FAULT_SEED`)
///     parsed by `arm_from_env()`, which benches call at startup — this is
///     how a *child process* of the sweep driver gets its faults armed
///     without new flags on every bench;
///   * file: `--fault-plan <path>` on any bench, parsed by
///     `arm_plan_file()` — entry lines plus an optional `seed=<N>` line,
///     `#`-prefixed lines are comments (the replay format cobra_chaos and
///     quarantined sweep cells print).
///
/// Every firing is recorded in an in-memory EVENT LOG (site, hit index,
/// firing ordinal, engine round) and — when the obs trace sink is armed —
/// emitted as a `{"fault": ...}` JSONL line next to the per-round traces,
/// so a chaotic run can be replayed and post-mortemed from its artifacts.
///
/// Registered site names in this repo (grep for `fault::should_fail`),
/// with their contract class — GRACEFUL sites must degrade to a
/// bit-identical trajectory; HARD sites must fail loudly naming the site:
///
///   frontier.dense_alloc       GRACEFUL  dense-bitmap allocation in the
///                              frontier engine (degrades to sparse path)
///   frontier.materialize_alloc GRACEFUL  span-overload dense materialize
///                              scratch (degrades to the serial decode)
///   rng.block_refill           GRACEFUL  batched-RNG block refill
///                              (degrades to single-draw refills; the
///                              value stream is unchanged by contract)
///   pool.thread_spawn          GRACEFUL  worker spawn in ThreadPool
///                              (pool comes up smaller, >= 1 worker;
///                              results are thread-count-invariant)
///   trace.write                GRACEFUL  trace-sink line write (line
///                              dropped + counted; telemetry never
///                              affects results)
///   checkpoint.write           HARD      snapshot serialization (periodic
///                              snapshots warn and continue; explicit
///                              saves throw)
///   checkpoint.read            HARD      snapshot deserialization (resume
///                              fails loudly)
///   checkpoint.torn_write      HARD      snapshot write truncates
///                              mid-payload and still lands on the target
///                              path — the next read must reject it
///   gen.alloc                  HARD      graph-family allocation in
///                              build_graph (throws std::bad_alloc)
///   gen.build_graph            HARD      build_graph mid-build, after the
///                              family factory (throws, naming the site)
///   sweep.child_spawn          GRACEFUL  sweep child process launch (the
///                              attempt fails and rides retry/quarantine)
///   chaos.degrade_bug          TEST-ONLY a deliberately broken
///                              "degradation" in bench/chaos that corrupts
///                              the trajectory — exists so cobra_chaos can
///                              prove it catches contract violations

namespace cobra::util::fault {

namespace detail {
/// The one-word disabled gate. Never set directly — arm/disarm own it.
extern std::atomic<bool> any_armed;
/// Engine round clock for the event log: FrontierEngine ticks it once per
/// expand while any fault is armed (zero cost otherwise).
extern std::atomic<std::uint64_t> round_clock;
}  // namespace detail

/// True when at least one site is armed — the cheap gate every site
/// checks first.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::any_armed.load(std::memory_order_relaxed);
}

/// One fault-plan entry (grammar above).
struct FaultSpec {
  std::string site;
  std::uint64_t after = 0;  ///< first eligible hit (0-based)
  double prob = 1.0;        ///< firing probability per eligible hit
  std::uint64_t limit = 0;  ///< max firings; 0 = unlimited

  /// Canonical spec text: site@after[%prob][#limit].
  [[nodiscard]] std::string render() const;
};

/// A parsed fault plan: the entries plus the seed for their probabilistic
/// streams. (plan, seed) fully determines the firing schedule.
struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0;

  /// Parse a comma-separated entry list. Throws std::invalid_argument on
  /// any malformed entry, naming the offending token.
  static FaultPlan parse(std::string_view text);

  /// Canonical comma-joined spec text (parse(render()) round-trips).
  [[nodiscard]] std::string render() const;
};

/// One recorded firing.
struct FaultEvent {
  std::string site;
  std::uint64_t hit = 0;    ///< 0-based hit index that fired
  std::uint64_t fire = 0;   ///< 1-based firing ordinal for the site
  std::uint64_t round = 0;  ///< engine round clock at firing time
};

/// Arm `site`: its `should_fail()` returns true from the `after`-th hit
/// (0-based) onward. Re-arming an armed site resets its hit counter.
void arm(std::string_view site, std::uint64_t after = 0);

/// Arm one spec entry; `seed` seeds its probabilistic stream (unused when
/// prob == 1). Re-arming resets hit/firing counters and the stream.
void arm_spec(const FaultSpec& spec, std::uint64_t seed = 0);

/// Arm every entry of `plan` under `plan.seed`; returns the count armed.
std::size_t arm_plan(const FaultPlan& plan);

/// Disarm every site, clear the event log, and reset the round clock
/// (test teardown).
void disarm_all();

/// Slow path: count a hit against `site` and report whether it should
/// fail now. Only called when `enabled()`; unarmed sites never fail.
[[nodiscard]] bool should_fail_slow(std::string_view site) noexcept;

/// The site query: false (one relaxed load) unless some fault is armed.
[[nodiscard]] inline bool should_fail(std::string_view site) noexcept {
  return enabled() && should_fail_slow(site);
}

/// Hits recorded against `site` since it was (re-)armed; 0 when unarmed.
/// Observability for tests asserting a site was actually reached.
[[nodiscard]] std::uint64_t hits(std::string_view site) noexcept;

/// Firings recorded against `site` since it was (re-)armed; 0 when
/// unarmed. hits() counts queries, fired() counts should_fail() == true.
[[nodiscard]] std::uint64_t fired(std::string_view site) noexcept;

/// Parse `COBRA_FAULT` (the plan grammar) and arm each entry, seeding the
/// probabilistic streams from `COBRA_FAULT_SEED` (default 0). Returns the
/// number of sites armed (0 when unset/empty). Malformed entries are
/// skipped with a warning on stderr — a typo'd injection must not turn
/// into a silently fault-free run, so the warning names the dropped token.
std::size_t arm_from_env();

/// Arm a plan file (`--fault-plan`): entry lines (comma lists allowed),
/// optional `seed=<N>` line, `#` comments. Throws std::invalid_argument
/// on an unreadable file or malformed entry.
std::size_t arm_plan_file(const std::string& path);

/// The armed sites in canonical spec form ("name@after[%prob][#limit]")
/// — diagnostics / tests.
[[nodiscard]] std::vector<std::string> armed_sites();

/// Snapshot of the firing event log (bounded to the most recent 4096).
[[nodiscard]] std::vector<FaultEvent> events();

/// Advance the event log's engine round clock — the frontier engine calls
/// this once per expand when enabled() (never on the fault-free path).
inline void tick_round() noexcept {
  detail::round_clock.fetch_add(1, std::memory_order_relaxed);
}

/// The current round-clock value stamped into events.
[[nodiscard]] inline std::uint64_t current_round() noexcept {
  return detail::round_clock.load(std::memory_order_relaxed);
}

}  // namespace cobra::util::fault
