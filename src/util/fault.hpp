#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file fault.hpp
/// Fault-injection registry — the failure-testing backbone of the
/// resilience layer. Code that can fail in production (allocation on the
/// dense-frontier switch, snapshot I/O, bench child startup) declares a
/// named *site*; tests and the sweep driver *arm* sites to fail, and the
/// site's `should_fail()` query tells the code to take its degradation
/// path exactly as a real failure would.
///
/// Design constraints, in priority order:
///
///   1. ZERO cost when disabled. Sites sit on hot paths (the frontier
///      engine's representation switch), so the disabled check is one
///      relaxed load of a global atomic flag that is false unless
///      something armed a fault — no string compare, no map lookup, no
///      lock. Arming is test/startup-time only and may be slow.
///   2. Deterministic. A site armed with `after = k` fails on its k-th
///      hit (0-based) and every later hit, so "crash the 3rd snapshot"
///      is a reproducible scenario, not a race.
///   3. Thread-safe queries. Sites are hit from pool workers; the hit
///      counter is atomic and arming mutates the registry only under its
///      own lock (callers must not arm concurrently with queries of the
///      same test — the normal arm-then-run pattern).
///
/// Arming paths:
///   * programmatic: `arm_fault("frontier.dense_alloc", 2)` in a test;
///   * environment: `COBRA_FAULT="site[@after][,site...]"` parsed by
///     `arm_faults_from_env()`, which benches call at startup — this is
///     how a *child process* of the sweep driver gets its faults armed
///     without new flags on every bench.
///
/// Registered site names in this repo (grep for `fault::should_fail`):
///   frontier.dense_alloc   dense-bitmap allocation in the frontier
///                          engine (degrades to the sparse path)
///   checkpoint.write       snapshot serialization (periodic snapshots
///                          warn and continue; explicit saves throw)
///   checkpoint.read        snapshot deserialization (resume fails loudly)

namespace cobra::util::fault {

namespace detail {
/// The one-word disabled gate. Never set directly — arm/disarm own it.
extern std::atomic<bool> any_armed;
}  // namespace detail

/// True when at least one site is armed — the cheap gate every site
/// checks first.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::any_armed.load(std::memory_order_relaxed);
}

/// Arm `site`: its `should_fail()` returns true from the `after`-th hit
/// (0-based) onward. Re-arming an armed site resets its hit counter.
void arm(std::string_view site, std::uint64_t after = 0);

/// Disarm every site and reset all hit counters (test teardown).
void disarm_all();

/// Slow path: count a hit against `site` and report whether it should
/// fail now. Only called when `enabled()`; unarmed sites never fail.
[[nodiscard]] bool should_fail_slow(std::string_view site) noexcept;

/// The site query: false (one relaxed load) unless some fault is armed.
[[nodiscard]] inline bool should_fail(std::string_view site) noexcept {
  return enabled() && should_fail_slow(site);
}

/// Hits recorded against `site` since it was (re-)armed; 0 when unarmed.
/// Observability for tests asserting a site was actually reached.
[[nodiscard]] std::uint64_t hits(std::string_view site) noexcept;

/// Parse `COBRA_FAULT` ("site[@after][,site...]") and arm each entry.
/// Returns the number of sites armed (0 when unset/empty). Malformed
/// entries are skipped with a warning on stderr — a typo'd injection
/// must not turn into a silently fault-free run, so the warning names
/// the dropped token.
std::size_t arm_from_env();

/// The armed sites as "name@after" strings (diagnostics / tests).
[[nodiscard]] std::vector<std::string> armed_sites();

}  // namespace cobra::util::fault
