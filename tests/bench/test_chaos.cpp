// Tests for the cobra_chaos fuzz engine (bench/chaos.{hpp,cpp}):
// trajectory fingerprints are deterministic and thread-count-invariant,
// graceful plans leave them unchanged, the planted chaos.degrade_bug is
// caught AND shrunk to a minimal reproducer, shrink_plan's greedy
// delta-debug keeps exactly the necessary entries, and a clean run's
// report carries the expected accounting.

#include "chaos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/registry.hpp"
#include "util/fault.hpp"

namespace {

using namespace cobra;
using util::fault::FaultPlan;

struct ChaosTest : ::testing::Test {
  void SetUp() override { util::fault::disarm_all(); }
  void TearDown() override { util::fault::disarm_all(); }
};

TEST_F(ChaosTest, TrajectoryFingerprintIsDeterministicAndThreadInvariant) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=7");
  const std::uint64_t f1 = bench::chaos_trajectory(g, 1, 99, 24, 2, false);
  const std::uint64_t f1b = bench::chaos_trajectory(g, 1, 99, 24, 2, false);
  const std::uint64_t f2 = bench::chaos_trajectory(g, 2, 99, 24, 2, false);
  EXPECT_EQ(f1, f1b);
  EXPECT_EQ(f1, f2) << "trajectory depends on thread count";
  // Different walk seed, different trajectory.
  EXPECT_NE(f1, bench::chaos_trajectory(g, 1, 100, 24, 2, false));
}

TEST_F(ChaosTest, GracefulPlanLeavesTheFingerprintUnchanged) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=7");
  const std::uint64_t baseline = bench::chaos_trajectory(g, 2, 5, 24, 2, false);
  // Arm every graceful catalog site at once — the worst graceful storm.
  FaultPlan plan;
  for (const std::string& site : bench::chaos_graceful_sites(false)) {
    plan.specs.push_back(FaultPlan::parse(site + "%0.5").specs[0]);
  }
  plan.seed = 13;
  util::fault::arm_plan(plan);
  const std::uint64_t stormy = bench::chaos_trajectory(g, 2, 5, 24, 2, false);
  util::fault::disarm_all();
  EXPECT_EQ(stormy, baseline);
}

TEST_F(ChaosTest, DegradeBugChangesTheFingerprint) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=7");
  const std::uint64_t baseline = bench::chaos_trajectory(g, 1, 5, 24, 2, true);
  util::fault::arm("chaos.degrade_bug", 3);
  const std::uint64_t broken = bench::chaos_trajectory(g, 1, 5, 24, 2, true);
  util::fault::disarm_all();
  EXPECT_NE(broken, baseline) << "the planted bug fired but nothing diverged";
}

TEST_F(ChaosTest, ShrinkPlanKeepsExactlyTheNecessaryEntries) {
  const FaultPlan plan = FaultPlan::parse("a@1,b@2%0.5,c#3,d@4");
  // "Reproduces" iff the sub-plan still contains both b and d.
  const auto needs_b_and_d = [](const FaultPlan& p) {
    const auto has = [&p](const std::string& name) {
      return std::any_of(p.specs.begin(), p.specs.end(),
                         [&](const auto& s) { return s.site == name; });
    };
    return has("b") && has("d");
  };
  std::size_t runs = 0;
  const FaultPlan shrunk = bench::shrink_plan(plan, needs_b_and_d, &runs);
  ASSERT_EQ(shrunk.specs.size(), 2u);
  EXPECT_EQ(shrunk.specs[0].site, "b");
  EXPECT_EQ(shrunk.specs[1].site, "d");
  EXPECT_GT(runs, 0u);
  // Suffixes survive the shrink untouched (the reproducer must replay).
  EXPECT_DOUBLE_EQ(shrunk.specs[0].prob, 0.5);
}

TEST_F(ChaosTest, ShrinkPlanIsIdentityOnSingleEntryPlans) {
  const FaultPlan plan = FaultPlan::parse("only.site@2");
  const auto always = [](const FaultPlan&) { return true; };
  EXPECT_EQ(bench::shrink_plan(plan, always).specs.size(), 1u);
}

TEST_F(ChaosTest, CleanFuzzReportsNoViolationsWithFullAccounting) {
  bench::ChaosConfig config;
  config.specs = {"rreg:n=128,d=4,seed=3"};
  config.threads = {1, 2};
  config.schedules = 8;
  config.seed = 1;
  config.rounds = 12;
  config.scratch_path = ::testing::TempDir() + "chaos_clean.snap";
  const bench::ChaosReport report = bench::run_chaos(config);
  EXPECT_EQ(report.cells, 2u);
  EXPECT_EQ(report.fuzz_runs, 16u);
  EXPECT_GT(report.hard_checks, 0u);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(util::fault::armed_sites().empty());  // registry left clean
  const std::string text = bench::render_chaos_report(report, config);
  EXPECT_NE(text.find("0 violations"), std::string::npos);
}

TEST_F(ChaosTest, MisFingerprintIsDeterministicAndThreadInvariant) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=7");
  const std::uint64_t f1 = bench::chaos_mis_trajectory(g, 1, 99, 24, 2, false);
  const std::uint64_t f1b = bench::chaos_mis_trajectory(g, 1, 99, 24, 2, false);
  const std::uint64_t f8 = bench::chaos_mis_trajectory(g, 8, 99, 24, 2, false);
  EXPECT_EQ(f1, f1b);
  EXPECT_EQ(f1, f8) << "MIS trajectory depends on thread count";
  EXPECT_NE(f1, bench::chaos_mis_trajectory(g, 1, 100, 24, 2, false));
}

TEST_F(ChaosTest, MisGracefulStormLeavesTheFingerprintUnchanged) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=7");
  const std::uint64_t baseline =
      bench::chaos_mis_trajectory(g, 2, 5, 24, 2, false);
  FaultPlan plan;
  for (const std::string& site : bench::chaos_graceful_sites(false)) {
    plan.specs.push_back(FaultPlan::parse(site + "%0.5").specs[0]);
  }
  plan.seed = 13;
  util::fault::arm_plan(plan);
  const std::uint64_t stormy =
      bench::chaos_mis_trajectory(g, 2, 5, 24, 2, false);
  util::fault::disarm_all();
  EXPECT_EQ(stormy, baseline)
      << "a graceful degradation changed a retain-path trajectory";
}

TEST_F(ChaosTest, MisDegradeBugChangesTheFingerprint) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=7");
  const std::uint64_t baseline =
      bench::chaos_mis_trajectory(g, 1, 5, 24, 2, true);
  util::fault::arm("chaos.degrade_bug", 1);
  const std::uint64_t broken = bench::chaos_mis_trajectory(g, 1, 5, 24, 2, true);
  util::fault::disarm_all();
  EXPECT_NE(broken, baseline) << "the planted MIS bug fired silently";
}

TEST_F(ChaosTest, MisCleanFuzzReportsNoViolations) {
  bench::ChaosConfig config;
  config.process = "mis";
  config.specs = {"rreg:n=128,d=4,seed=3"};
  config.threads = {1, 2};
  config.schedules = 8;
  config.seed = 1;
  config.rounds = 12;
  config.scratch_path = ::testing::TempDir() + "chaos_mis_clean.snap";
  const bench::ChaosReport report = bench::run_chaos(config);
  EXPECT_EQ(report.cells, 2u);
  EXPECT_EQ(report.fuzz_runs, 16u);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(util::fault::armed_sites().empty());
  const std::string text = bench::render_chaos_report(report, config);
  EXPECT_NE(text.find("process=mis"), std::string::npos);
}

TEST_F(ChaosTest, MisInjectedBugIsCaughtAndShrunk) {
  bench::ChaosConfig config;
  config.process = "mis";
  config.specs = {"rreg:n=128,d=4,seed=3"};
  config.threads = {1};
  config.schedules = 16;
  config.seed = 1;
  config.rounds = 12;
  config.inject_bug = true;
  config.scratch_path = ::testing::TempDir() + "chaos_mis_bug.snap";
  const bench::ChaosReport report = bench::run_chaos(config);
  ASSERT_FALSE(report.violations.empty())
      << "16 schedules over the bug catalog never tripped the MIS bug";
  for (const bench::ChaosViolation& v : report.violations) {
    EXPECT_LE(v.shrunk.specs.size(), 2u) << "reproducer not minimal";
    EXPECT_TRUE(std::any_of(
        v.shrunk.specs.begin(), v.shrunk.specs.end(),
        [](const auto& s) { return s.site == "chaos.degrade_bug"; }))
        << "shrunk plan lost the planted bug";
  }
}

TEST_F(ChaosTest, UnknownProcessIsALoudConfigError) {
  bench::ChaosConfig config;
  config.specs = {"ring:n=16"};
  config.threads = {1};
  config.process = "walt";
  EXPECT_THROW((void)bench::run_chaos(config), std::invalid_argument);
}

TEST_F(ChaosTest, InjectedBugIsCaughtAndShrunkToAMinimalReproducer) {
  bench::ChaosConfig config;
  config.specs = {"rreg:n=128,d=4,seed=3"};
  config.threads = {1};
  config.schedules = 16;
  config.seed = 1;
  config.rounds = 12;
  config.inject_bug = true;
  config.scratch_path = ::testing::TempDir() + "chaos_bug.snap";
  const bench::ChaosReport report = bench::run_chaos(config);
  ASSERT_FALSE(report.violations.empty())
      << "16 schedules over the bug catalog never drew the planted bug";
  for (const bench::ChaosViolation& v : report.violations) {
    EXPECT_LE(v.shrunk.specs.size(), 2u) << "reproducer not minimal";
    EXPECT_TRUE(std::any_of(
        v.shrunk.specs.begin(), v.shrunk.specs.end(),
        [](const auto& s) { return s.site == "chaos.degrade_bug"; }))
        << "shrunk plan lost the planted bug";
  }
  // The report renders a replayable --fault-plan block per violation.
  const std::string text = bench::render_chaos_report(report, config);
  EXPECT_NE(text.find("seed="), std::string::npos);
  EXPECT_NE(text.find("chaos.degrade_bug"), std::string::npos);
}

}  // namespace
