// Unit tests for the regression gate (bench/gate.{hpp,cpp}): record
// extraction from both file formats, the value-vs-timing field split,
// slack arithmetic, missing record/field detection, and the report JSON.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "gate.hpp"

namespace {

using namespace cobra;

const std::string kBaseline =
    "{\n"
    "  \"benchmark\": \"demo\",\n"
    "  \"context\": { \"smoke\": 1, \"graph\": \"ring:n=64\" },\n"
    "  \"records\": [\n"
    "    { \"name\": \"case_a\", \"rounds\": 100, \"ratio\": 1.5,\n"
    "      \"cover_seconds\": 0.5, \"label\": \"x\" },\n"
    "    { \"name\": \"case_b\", \"rounds\": 200, \"ratio\": 2.0 }\n"
    "  ]\n"
    "}\n";

std::string with(const std::string& text, const std::string& from,
                 const std::string& to) {
  std::string out = text;
  const std::size_t at = out.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  out.replace(at, from.size(), to);
  return out;
}

TEST(Gate, TimingFieldsMatchBySubstring) {
  EXPECT_TRUE(bench::is_timing_field("cover_seconds"));
  EXPECT_TRUE(bench::is_timing_field("steps_per_sec"));
  EXPECT_TRUE(bench::is_timing_field("Speedup_8t"));
  EXPECT_TRUE(bench::is_timing_field("throughput"));
  EXPECT_TRUE(bench::is_timing_field("wall_time_ms"));
  EXPECT_FALSE(bench::is_timing_field("rounds"));
  EXPECT_FALSE(bench::is_timing_field("ratio"));
  EXPECT_FALSE(bench::is_timing_field("exponent"));
}

TEST(Gate, ExtractsNumericRecordFields) {
  const auto records = bench::extract_gate_records(kBaseline);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "case_a");
  ASSERT_EQ(records[0].fields.size(), 3u);  // "label" is a string: ignored
  EXPECT_EQ(records[0].fields[0].first, "rounds");
  EXPECT_DOUBLE_EQ(records[0].fields[0].second, 100.0);
  EXPECT_EQ(records[1].name, "case_b");
}

TEST(Gate, DuplicateRecordNamesGetSuffixes) {
  const std::string dup =
      "{ \"benchmark\": \"d\", \"records\": ["
      " { \"name\": \"r\", \"v\": 1 }, { \"name\": \"r\", \"v\": 2 } ] }";
  const auto records = bench::extract_gate_records(dup);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "r");
  EXPECT_EQ(records[1].name, "r#2");
}

TEST(Gate, MalformedJsonThrows) {
  EXPECT_THROW((void)bench::extract_gate_records("not json"),
               std::invalid_argument);
  EXPECT_THROW((void)bench::extract_gate_records("{ \"benchmark\": \"x\" }"),
               std::invalid_argument);
  EXPECT_THROW((void)bench::extract_gate_records(
                   kBaseline.substr(0, kBaseline.size() / 2)),
               std::invalid_argument);
}

TEST(Gate, IdenticalFilesPass) {
  const auto report = bench::run_gate(kBaseline, kBaseline, {});
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(report.records_compared, 2u);
  EXPECT_EQ(report.fields_compared, 4u);       // 2x rounds + 2x ratio
  EXPECT_EQ(report.time_fields_skipped, 1u);   // cover_seconds
  EXPECT_TRUE(report.issues.empty());
}

TEST(Gate, DriftWithinSlackPasses) {
  // ratio 1.5 -> 1.56: rel delta 0.04, inside the default 0.05.
  const std::string candidate = with(kBaseline, "\"ratio\": 1.5,", "\"ratio\": 1.56,");
  EXPECT_TRUE(bench::run_gate(kBaseline, candidate, {}).pass);
}

TEST(Gate, DriftBeyondSlackFails) {
  // ratio 1.5 -> 1.7: rel delta ~0.133.
  const std::string candidate = with(kBaseline, "\"ratio\": 1.5,", "\"ratio\": 1.7,");
  const auto report = bench::run_gate(kBaseline, candidate, {});
  ASSERT_FALSE(report.pass);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, "exceeds-slack");
  EXPECT_EQ(report.issues[0].record, "case_a");
  EXPECT_EQ(report.issues[0].field, "ratio");
  EXPECT_NEAR(report.issues[0].rel_delta, 0.1333, 0.001);
  // A wider slack admits the same drift.
  bench::GateConfig wide;
  wide.slack = 0.2;
  EXPECT_TRUE(bench::run_gate(kBaseline, candidate, wide).pass);
}

TEST(Gate, MissingRecordAndFieldFail) {
  const std::string no_b = with(
      kBaseline, ",\n    { \"name\": \"case_b\", \"rounds\": 200, \"ratio\": 2.0 }",
      "");
  const auto missing_record = bench::run_gate(kBaseline, no_b, {});
  ASSERT_FALSE(missing_record.pass);
  ASSERT_EQ(missing_record.issues.size(), 1u);
  EXPECT_EQ(missing_record.issues[0].kind, "missing-record");
  EXPECT_EQ(missing_record.issues[0].record, "case_b");

  const std::string no_field =
      with(kBaseline, "\"rounds\": 200, ", "");
  const auto missing_field = bench::run_gate(kBaseline, no_field, {});
  ASSERT_FALSE(missing_field.pass);
  ASSERT_EQ(missing_field.issues.size(), 1u);
  EXPECT_EQ(missing_field.issues[0].kind, "missing-field");
  EXPECT_EQ(missing_field.issues[0].field, "rounds");

  // The reverse direction is fine: extra candidate records are ignored.
  EXPECT_TRUE(bench::run_gate(no_b, kBaseline, {}).pass);
}

TEST(Gate, TimingGatedOnlyOnOptIn) {
  // A synthetically slowed run: cover_seconds 0.5 -> 5.0 (10x).
  const std::string slowed =
      with(kBaseline, "\"cover_seconds\": 0.5,", "\"cover_seconds\": 5.0,");
  // Default config: timing skipped, gate passes.
  const auto skipped = bench::run_gate(kBaseline, slowed, {});
  EXPECT_TRUE(skipped.pass);
  EXPECT_EQ(skipped.time_fields_skipped, 1u);
  // Opting in at 50% slack catches the 10x regression.
  bench::GateConfig strict;
  strict.gate_time = true;
  strict.time_slack = 0.5;
  const auto gated = bench::run_gate(kBaseline, slowed, strict);
  ASSERT_FALSE(gated.pass);
  ASSERT_EQ(gated.issues.size(), 1u);
  EXPECT_EQ(gated.issues[0].field, "cover_seconds");
  EXPECT_DOUBLE_EQ(gated.issues[0].allowed, 0.5);
  // An absurdly wide time slack re-admits it.
  strict.time_slack = 20.0;
  EXPECT_TRUE(bench::run_gate(kBaseline, slowed, strict).pass);
}

TEST(Gate, SweepFilesGateRecordsPerCell) {
  const auto cell = [](const std::string& spec, int threads, double rounds) {
    return "{ \"sweep_run_id\": 0, \"bench\": \"bench_demo\", \"spec\": \"" +
           spec + "\", \"threads\": " + std::to_string(threads) +
           ", \"result\": { \"benchmark\": \"demo\", \"records\": [ { "
           "\"name\": \"cover\", \"rounds\": " +
           std::to_string(rounds) + " } ] } }";
  };
  const auto sweep = [&](double r1, double r2) {
    return "{ \"sweep\": \"cobra_sweep\", \"context\": {}, \"runs\": [ " +
           cell("ring:n=64", 1, r1) + ", " + cell("ring:n=64", 2, r2) +
           " ] }";
  };
  const auto records = bench::extract_gate_records(sweep(100, 100));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "bench_demo|ring:n=64|t1|cover");
  EXPECT_EQ(records[1].name, "bench_demo|ring:n=64|t2|cover");

  EXPECT_TRUE(bench::run_gate(sweep(100, 100), sweep(100, 103), {}).pass);
  const auto report = bench::run_gate(sweep(100, 100), sweep(100, 120), {});
  ASSERT_FALSE(report.pass);
  EXPECT_EQ(report.issues[0].record, "bench_demo|ring:n=64|t2|cover");
}

TEST(Gate, NonFiniteCandidateFieldIsAHardMismatch) {
  // JsonReporter renders NaN/Inf as null; the gate maps null back to NaN
  // and must fail the comparison outright — NaN compares false with
  // everything, so plain slack arithmetic would wave garbage through.
  const std::string candidate = with(kBaseline, "\"ratio\": 1.5,",
                                     "\"ratio\": null,");
  const auto report = bench::run_gate(kBaseline, candidate, {});
  EXPECT_FALSE(report.pass);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, "non-finite");
  EXPECT_EQ(report.issues[0].record, "case_a");
  EXPECT_EQ(report.issues[0].field, "ratio");
  // Both directions are hard failures: a poisoned BASELINE must not
  // become a free pass for the candidate either.
  const std::string bad_base = with(kBaseline, "\"rounds\": 100,",
                                    "\"rounds\": null,");
  const auto flipped = bench::run_gate(bad_base, kBaseline, {});
  EXPECT_FALSE(flipped.pass);
  ASSERT_EQ(flipped.issues.size(), 1u);
  EXPECT_EQ(flipped.issues[0].kind, "non-finite");
  // And the report renders the offending values as null, not as nan text
  // that would corrupt the report JSON.
  const std::string json = bench::render_gate_report(report, {});
  EXPECT_NE(json.find("\"non-finite\""), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Gate, ReportJsonCarriesVerdictAndIssues) {
  const std::string candidate = with(kBaseline, "\"ratio\": 1.5,", "\"ratio\": 1.7,");
  bench::GateConfig config;
  const auto report = bench::run_gate(kBaseline, candidate, config);
  const std::string json = bench::render_gate_report(report, config);
  EXPECT_NE(json.find("\"pass\": false"), std::string::npos);
  EXPECT_NE(json.find("\"slack\": 0.05"), std::string::npos);
  EXPECT_NE(json.find("\"exceeds-slack\""), std::string::npos);
  EXPECT_NE(json.find("\"case_a\""), std::string::npos);
  // The report is itself valid JSON by the gate's own parser... which only
  // reads bench/sweep shapes, so settle for structural balance here.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  const auto pass_report =
      bench::render_gate_report(bench::run_gate(kBaseline, kBaseline, config),
                                config);
  EXPECT_NE(pass_report.find("\"pass\": true"), std::string::npos);
  EXPECT_NE(pass_report.find("\"issues\": []"), std::string::npos);
}

}  // namespace
