#include "harness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cobra::bench {
namespace {

io::Args parse(std::vector<const char*> argv,
               std::vector<std::string> extra = {}) {
  argv.insert(argv.begin(), "bench");
  return parse_bench_args_checked(static_cast<int>(argv.size()), argv.data(),
                                  std::move(extra));
}

TEST(ParseBenchArgs, AcceptsTheSharedFlagSet) {
  const io::Args args = parse(
      {"--graph", "ring:n=8", "--out", "x.json", "--smoke", "--threads", "2"});
  EXPECT_EQ(args.get("graph", ""), "ring:n=8");
  EXPECT_EQ(args.get("out", ""), "x.json");
  EXPECT_TRUE(args.get_bool("smoke", false));
  EXPECT_EQ(args.get_uint("threads", 0), 2u);
}

TEST(ParseBenchArgs, AcceptsBenchSpecificExtraFlags) {
  const io::Args args = parse({"--trials", "7", "--smoke"}, {"trials"});
  EXPECT_EQ(args.get_uint("trials", 0), 7u);
}

TEST(ParseBenchArgs, RejectsUnknownFlag) {
  EXPECT_THROW((void)parse({"--nope", "1"}), std::invalid_argument);
}

TEST(ParseBenchArgs, RejectsPositionalArguments) {
  // Pre-migration benches took positional [out.json]; silently accepting
  // those could overwrite recorded baselines, so they are an error.
  EXPECT_THROW((void)parse({"out.json"}), std::invalid_argument);
}

TEST(ParseBenchArgs, RejectsMalformedThreadsValueEagerly) {
  EXPECT_THROW((void)parse({"--threads", "many"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"--threads=-2"}), std::invalid_argument);
}

TEST(ResolveSuite, FullModeKeepsTheDeclaredSpecs) {
  const io::Args args = parse({});
  const auto resolved = resolve_suite(
      args, /*smoke=*/false,
      {{"a", "ring:n=64", "ring:n=8"}, {"b", "path:n=32", ""}});
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0].spec, "ring:n=64");
  EXPECT_EQ(resolved[1].spec, "path:n=32");
}

TEST(ResolveSuite, SmokeModeSubstitutesSmokeSpecsWhereDeclared) {
  const io::Args args = parse({"--smoke"});
  const auto resolved = resolve_suite(
      args, /*smoke=*/true,
      {{"a", "ring:n=64", "ring:n=8"}, {"b", "path:n=32", ""}});
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0].spec, "ring:n=8");   // shrunk
  EXPECT_EQ(resolved[1].spec, "path:n=32");  // no smoke spec: full reused
}

TEST(ResolveSuite, GraphFlagCollapsesTheSuiteToOneCase) {
  const io::Args args = parse({"--graph", "hypercube:dims=4"});
  const auto resolved = resolve_suite(
      args, /*smoke=*/false,
      {{"a", "ring:n=64", "ring:n=8"}, {"b", "path:n=32", ""}});
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].name, "hypercube:dims=4");
  EXPECT_EQ(resolved[0].spec, "hypercube:dims=4");
}

TEST(Harness, SuiteBuildsGraphsThroughTheRegistry) {
  Harness h("t", parse({"--smoke"}));
  const auto built = h.suite({{"ring", "ring:n=16", "ring:n=8"}});
  ASSERT_EQ(built.size(), 1u);
  EXPECT_EQ(built[0].name, "ring");
  EXPECT_EQ(built[0].spec, "ring:n=8");
  EXPECT_EQ(built[0].graph.num_vertices(), 8u);
}

TEST(Harness, GraphOverrideBuildsTheNamedGraph) {
  Harness h("t", parse({"--graph", "hypercube:dims=4"}));
  EXPECT_TRUE(h.has_graph());
  const auto built = h.suite({{"ring", "ring:n=16", ""}});
  ASSERT_EQ(built.size(), 1u);
  EXPECT_EQ(built[0].graph.num_vertices(), 16u);
}

TEST(Harness, TrialsPicksTheModeDefaultAndTheFlagWins) {
  EXPECT_EQ(Harness("t", parse({})).trials(40, 6), 40u);
  EXPECT_EQ(Harness("t", parse({"--smoke"})).trials(40, 6), 6u);
  EXPECT_EQ(Harness("t", parse({"--smoke", "--trials", "3"}, {"trials"}))
                .trials(40, 6),
            3u);
}

TEST(Harness, FinishWritesTheOutJson) {
  const std::string path = testing::TempDir() + "harness_out.json";
  Harness h("my_bench", parse({"--out", path.c_str(), "--smoke"}));
  h.json().record("r0").field("value", 1.5).field("label", "x");
  EXPECT_EQ(h.finish(), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"benchmark\": \"my_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"r0\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 1.5"), std::string::npos);
}

TEST(Harness, FinishWithoutOutIsANoOp) {
  Harness h("t", parse({}));
  EXPECT_EQ(h.finish(), 0);
}

TEST(JsonReporter, EscapesQuotesBackslashesAndControlChars) {
  JsonReporter json("esc");
  json.record("r").field("s", std::string("a\"b\\c\nd"));
  const std::string out = json.render();
  EXPECT_NE(out.find("a\\\"b\\\\c\\u000ad"), std::string::npos);
}

TEST(JsonReporter, NonFiniteNumbersSerializeAsNull) {
  JsonReporter json("nan");
  json.record("r").field("x", std::nan(""));
  EXPECT_NE(json.render().find("\"x\": null"), std::string::npos);
}

}  // namespace
}  // namespace cobra::bench
