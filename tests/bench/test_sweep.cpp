// Unit tests for the sweep driver's pure logic (bench/sweep.{hpp,cpp}):
// spec-list smart splitting, thread-list parsing, the merged longitudinal
// JSON format, and its drop detection — plus the --caps metadata parsing
// the driver uses to skip graph-no-op benches.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep.hpp"

#include "harness.hpp"
#include "util/fault.hpp"

namespace {

using namespace cobra;

TEST(SweepSplit, SemicolonsAlwaysSeparate) {
  const auto specs = bench::split_spec_list("ring:n=64; rreg:n=128,d=4 ;");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "ring:n=64");
  EXPECT_EQ(specs[1], "rreg:n=128,d=4");
}

TEST(SweepSplit, SmartCommaSplitKeepsSpecParamsTogether) {
  // The acceptance-criteria shape: one comma list, two specs, each spec
  // itself containing commas.
  const auto specs = bench::split_spec_list(
      "rreg:n=128,d=6,seed=5,rreg:n=256,d=6,seed=5");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "rreg:n=128,d=6,seed=5");
  EXPECT_EQ(specs[1], "rreg:n=256,d=6,seed=5");
}

TEST(SweepSplit, BareFamilyStartsANewSpec) {
  const auto specs = bench::split_spec_list("complete:n=8,hypercube:dims=3");
  ASSERT_EQ(specs.size(), 2u);
  const auto mixed = bench::split_spec_list("gnp:n=2^10,avg_deg=8,lcc=1,ring:n=64");
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0], "gnp:n=2^10,avg_deg=8,lcc=1");
  EXPECT_EQ(mixed[1], "ring:n=64");
}

TEST(SweepSplit, SingleSpecPassesThrough) {
  const auto specs = bench::split_spec_list("torus:side=16,dims=2");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0], "torus:side=16,dims=2");
}

TEST(SweepSplit, UintListParsesAndRejects) {
  EXPECT_EQ(bench::split_uint_list("1,2,8"),
            (std::vector<std::size_t>{1, 2, 8}));
  EXPECT_THROW(bench::split_uint_list("1,x"), std::invalid_argument);
  EXPECT_THROW(bench::split_uint_list(""), std::invalid_argument);
}

TEST(SweepMerge, RoundTripCountsAndValidates) {
  const std::string child =
      "{\n  \"benchmark\": \"demo\",\n  \"context\": {},\n"
      "  \"records\": [\n    { \"name\": \"r\" }\n  ]\n}\n";
  ASSERT_TRUE(bench::looks_like_bench_json(child));
  std::vector<bench::SweepRun> runs = {
      {"bench_demo", "ring:n=64", 1, child, {}},
      {"bench_demo", "ring:n=64", 2, child, {}},
      {"bench_demo", "rreg:n=128,d=4", 1, child, {}},
      {"bench_demo", "rreg:n=128,d=4", 2, child, {}},
  };
  const std::string merged =
      bench::merge_sweep_json(runs, 4, {{"graph", "ring:n=64,rreg:n=128,d=4"}});
  EXPECT_EQ(bench::count_merged_runs(merged), 4u);
  EXPECT_EQ(bench::expected_runs_of(merged), 4u);
  std::string error;
  EXPECT_TRUE(bench::validate_merged_sweep(merged, 0, &error)) << error;
  EXPECT_TRUE(bench::validate_merged_sweep(merged, 4, &error)) << error;
  // Wrong expectation fails loudly.
  EXPECT_FALSE(bench::validate_merged_sweep(merged, 3, &error));
}

TEST(SweepMerge, DroppedRunFailsValidation) {
  const std::string child =
      "{ \"benchmark\": \"demo\", \"records\": [] }";
  std::vector<bench::SweepRun> runs = {{"bench_demo", "ring:n=64", 1, child, {}}};
  // Promised 2, delivered 1 — the failure mode the CI step must catch.
  const std::string merged = bench::merge_sweep_json(runs, 2, {});
  std::string error;
  EXPECT_FALSE(bench::validate_merged_sweep(merged, 0, &error));
  EXPECT_NE(error.find("dropped"), std::string::npos);
}

TEST(SweepMerge, RejectsNonBenchJson) {
  EXPECT_FALSE(bench::looks_like_bench_json(""));
  EXPECT_FALSE(bench::looks_like_bench_json("{}"));
  EXPECT_FALSE(bench::looks_like_bench_json("not json at all"));
  EXPECT_FALSE(bench::looks_like_bench_json("{ \"benchmark\": \"x\" "));
}

TEST(Caps, RenderAndParseRoundTrip) {
  bench::BenchCaps caps;
  EXPECT_EQ(bench::parse_caps_graph(bench::render_caps(caps, {"trials"})),
            bench::BenchCaps::Graph::Effective);
  caps.graph = bench::BenchCaps::Graph::NoOp;
  const std::string line = bench::render_caps(caps, {"trials"});
  EXPECT_NE(line.find("graph=no"), std::string::npos);
  EXPECT_NE(line.find("trials"), std::string::npos);
  EXPECT_EQ(bench::parse_caps_graph(line), bench::BenchCaps::Graph::NoOp);
  caps.graph = bench::BenchCaps::Graph::Partial;
  EXPECT_EQ(bench::parse_caps_graph(bench::render_caps(caps, {})),
            bench::BenchCaps::Graph::Partial);
}

TEST(SweepMerge, TruncatedRealRecordPrefixesAreRejected) {
  // A crashed child typically leaves a PREFIX of a real record, which ends
  // at some inner '}' — the front/back-char check alone would embed it.
  // Fuzz every prefix of an actual JsonReporter rendering.
  bench::JsonReporter reporter("bench_demo");
  reporter.context("graph", "ring:n=64");
  reporter.record("cover").field("rounds", 12.0).field("note", "a\"b\\c");
  const std::string full = reporter.render();
  ASSERT_TRUE(bench::looks_like_bench_json(full));
  const auto rtrim = [](std::string s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.pop_back();
    }
    return s;
  };
  const std::string complete = rtrim(full);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string prefix = full.substr(0, len);
    // Losing only trailing whitespace leaves the document complete; every
    // prefix that lost CONTENT must be rejected.
    if (rtrim(prefix) == complete) continue;
    EXPECT_FALSE(bench::looks_like_bench_json(prefix))
        << "prefix length " << len << " accepted";
  }
}

TEST(SweepMerge, FailedRunsAreCountedAndKeepValidationHonest) {
  const std::string child = "{ \"benchmark\": \"demo\", \"records\": [] }";
  std::vector<bench::SweepRun> runs = {{"bench_demo", "ring:n=64", 1, child, {}}};
  std::vector<bench::FailedRun> failed = {
      {"bench_demo", "ring:n=64", 2, 3, "exit 86"}};
  // 1 completed + 1 quarantined == 2 expected: valid.
  const std::string merged = bench::merge_sweep_json(runs, failed, 2, {});
  EXPECT_EQ(bench::count_merged_runs(merged), 1u);
  EXPECT_EQ(bench::count_failed_runs(merged), 1u);
  std::string error;
  EXPECT_TRUE(bench::validate_merged_sweep(merged, 0, &error)) << error;
  EXPECT_TRUE(bench::validate_merged_sweep(merged, 2, &error)) << error;
  // The quarantine is explicit — it cannot stand in for MORE cells.
  EXPECT_FALSE(bench::validate_merged_sweep(merged, 3, &error));
  EXPECT_NE(merged.find("\"reason\": \"exit 86\""), std::string::npos);
  EXPECT_NE(merged.find("\"attempts\": 3"), std::string::npos);

  // Empty quarantine emits byte-identical output to the 3-arg overload —
  // the schema only grows when something actually failed.
  EXPECT_EQ(bench::merge_sweep_json(runs, {}, 1, {}),
            bench::merge_sweep_json(runs, 1, {}));
}

TEST(SweepRetry, BackoffGrowsExponentiallyAndCaps) {
  bench::RetryPolicy policy;  // 200 ms doubling
  EXPECT_EQ(bench::backoff_delay_ms(policy, 0), 200u);
  EXPECT_EQ(bench::backoff_delay_ms(policy, 1), 400u);
  EXPECT_EQ(bench::backoff_delay_ms(policy, 2), 800u);
  // The cap defuses typo'd factors: never parks the sweep past 60 s.
  EXPECT_EQ(bench::backoff_delay_ms(policy, 40), 60000u);
  policy.factor = 0.1;  // shrinking backoff makes no sense; floored at 1.0
  EXPECT_EQ(bench::backoff_delay_ms(policy, 5), 200u);
}

TEST(SweepResume, ExtractInvertsTheMergeExactly) {
  bench::JsonReporter reporter("bench_demo");
  reporter.context("note", "quoted \"text\" and a\\path");
  reporter.record("cover").field("rounds", 17.0);
  const std::string child = reporter.render();
  ASSERT_TRUE(bench::looks_like_bench_json(child));
  const std::vector<bench::SweepRun> runs = {
      {"bench_demo", "rreg:n=128,d=4,seed=1", 1, child, {}},
      {"bench_demo", "rreg:n=128,d=4,seed=1", 8, child, {}},
  };
  const std::vector<bench::FailedRun> failed = {
      {"bench_demo", "ring:n=64", 1, 2, "timeout after 1s (exit 124)"}};
  const std::string merged = bench::merge_sweep_json(runs, failed, 3, {});
  const auto extracted = bench::extract_merged_runs(merged);
  // Quarantined cells are NOT extracted — resume must retry them.
  ASSERT_EQ(extracted.size(), 2u);
  for (std::size_t i = 0; i < extracted.size(); ++i) {
    EXPECT_EQ(extracted[i].bench, runs[i].bench);
    EXPECT_EQ(extracted[i].spec, runs[i].spec);
    EXPECT_EQ(extracted[i].threads, runs[i].threads);
    EXPECT_EQ(extracted[i].json_text, runs[i].json_text)
        << "embedded JSON did not round-trip for run " << i;
  }
  // Re-merging the extraction reproduces a valid file.
  std::string error;
  EXPECT_TRUE(bench::validate_merged_sweep(
      bench::merge_sweep_json(extracted, 2, {}), 2, &error))
      << error;
}

TEST(SweepResume, ExtractRejectsMalformedFiles) {
  // A marker with none of the required fields after it.
  EXPECT_THROW((void)bench::extract_merged_runs("{ \"sweep_run_id\": 0 }"),
               std::invalid_argument);
  // A run entry whose result object never closes (a torn merged file).
  const std::string broken =
      "{ \"sweep\": \"cobra_sweep\",\n"
      "  \"runs\": [ { \"sweep_run_id\": 0, \"bench\": \"b\", "
      "\"spec\": \"s\", \"threads\": 1, \"result\": { \"x\": 1 ";
  EXPECT_THROW((void)bench::extract_merged_runs(broken),
               std::invalid_argument);
  // A file with no runs at all extracts to empty, not an error.
  EXPECT_TRUE(bench::extract_merged_runs("{}").empty());
}

TEST(Caps, MissingTokenDefaultsToEffective) {
  EXPECT_EQ(bench::parse_caps_graph("whatever"),
            bench::BenchCaps::Graph::Effective);
}

TEST(Caps, GraphTokenTerminatedByNewlineOrEndOfLine) {
  // graph= as the last token (no trailing space) must still parse.
  EXPECT_EQ(bench::parse_caps_graph("bench-caps: graph=no\n"),
            bench::BenchCaps::Graph::NoOp);
  EXPECT_EQ(bench::parse_caps_graph("bench-caps: graph=partial"),
            bench::BenchCaps::Graph::Partial);
}

TEST(SweepMerge, MetricsSnapshotsEmbedWithoutBreakingTheFormat) {
  // Trailing newline: extraction re-appends one (the on-disk child files
  // always end with it), so round-trip comparison needs it present.
  const std::string child =
      "{ \"benchmark\": \"demo\", \"records\": [ { \"name\": \"r\" } ] }\n";
  const std::string metrics =
      "{\n  \"manifest\": { \"git_sha\": \"abc1234\" },\n"
      "  \"metrics\": [ { \"name\": \"sim.runs\", \"kind\": \"counter\", "
      "\"value\": 1 } ]\n}\n";
  std::vector<bench::SweepRun> runs = {
      {"bench_demo", "ring:n=64", 1, child, metrics},
      {"bench_demo", "ring:n=64", 2, child, {}},  // no metrics: key omitted
  };
  const std::string merged = bench::merge_sweep_json(runs, 2, {});
  EXPECT_NE(merged.find("\"metrics\""), std::string::npos);
  EXPECT_NE(merged.find("\"sim.runs\""), std::string::npos);
  // Counting, validation, and resume extraction all still work with the
  // metrics object present.
  EXPECT_EQ(bench::count_merged_runs(merged), 2u);
  std::string error;
  EXPECT_TRUE(bench::validate_merged_sweep(merged, 2, &error)) << error;
  const auto extracted = bench::extract_merged_runs(merged);
  ASSERT_EQ(extracted.size(), 2u);
  EXPECT_EQ(extracted[0].json_text, child);
  EXPECT_EQ(extracted[1].json_text, child);
}

TEST(SweepSpawn, ChildSpawnFaultFailsTheAttemptWithoutExecuting) {
  // sweep.child_spawn (GRACEFUL at the sweep level): an armed firing
  // returns 127 — "command not found" — without running the command, and
  // the cell rides the normal retry/quarantine machinery. The marker file
  // proves nothing was executed.
  util::fault::disarm_all();
  const std::string marker = ::testing::TempDir() + "spawn_marker";
  std::remove(marker.c_str());
  util::fault::arm("sweep.child_spawn");
  EXPECT_EQ(bench::spawn_child("touch " + marker), 127);
  EXPECT_FALSE(std::ifstream(marker).good());
  util::fault::disarm_all();
  // Disarmed, the same command runs and its real exit code comes back.
  EXPECT_EQ(bench::spawn_child("touch " + marker), 0);
  EXPECT_TRUE(std::ifstream(marker).good());
  EXPECT_EQ(bench::spawn_child("exit 3"), 3);
  std::remove(marker.c_str());
}

TEST(SweepSpawn, TimeoutProbeAgreesWithTheShell) {
  // The probe must agree with what spawn_child would see: if it reports
  // the coreutils binary, `timeout 5 true` must actually work.
  if (bench::timeout_binary_available()) {
    EXPECT_EQ(bench::spawn_child("timeout 5 true >/dev/null 2>&1"), 0);
  } else {
    EXPECT_NE(bench::spawn_child("timeout --version >/dev/null 2>&1"), 0);
  }
}

TEST(SweepMerge, DistinctContextValuesFindsFingerprintDrift) {
  const std::string child_a =
      "{ \"benchmark\": \"demo\", \"context\": { \"git_sha\": \"aaa1111\", "
      "\"hardware_concurrency\": 8 }, \"records\": [ { \"name\": \"r\" } ] }";
  const std::string child_b =
      "{ \"benchmark\": \"demo\", \"context\": { \"git_sha\": \"bbb2222\", "
      "\"hardware_concurrency\": 8 }, \"records\": [ { \"name\": \"r\" } ] }";
  std::vector<bench::SweepRun> runs = {
      {"bench_demo", "ring:n=64", 1, child_a, {}},
      {"bench_demo", "ring:n=64", 2, child_b, {}},
  };
  const std::string merged = bench::merge_sweep_json(runs, 2, {});
  const auto shas = bench::distinct_context_values(merged, "git_sha");
  ASSERT_EQ(shas.size(), 2u);  // mixed-host file: the --validate warning case
  EXPECT_EQ(shas[0], "aaa1111");
  EXPECT_EQ(shas[1], "bbb2222");
  // Numeric values dedupe on their literal spelling.
  EXPECT_EQ(
      bench::distinct_context_values(merged, "hardware_concurrency").size(),
      1u);
  EXPECT_TRUE(bench::distinct_context_values(merged, "no_such_key").empty());
}

}  // namespace
