// Unit tests for the sweep driver's pure logic (bench/sweep.{hpp,cpp}):
// spec-list smart splitting, thread-list parsing, the merged longitudinal
// JSON format, and its drop detection — plus the --caps metadata parsing
// the driver uses to skip graph-no-op benches.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sweep.hpp"

#include "harness.hpp"

namespace {

using namespace cobra;

TEST(SweepSplit, SemicolonsAlwaysSeparate) {
  const auto specs = bench::split_spec_list("ring:n=64; rreg:n=128,d=4 ;");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "ring:n=64");
  EXPECT_EQ(specs[1], "rreg:n=128,d=4");
}

TEST(SweepSplit, SmartCommaSplitKeepsSpecParamsTogether) {
  // The acceptance-criteria shape: one comma list, two specs, each spec
  // itself containing commas.
  const auto specs = bench::split_spec_list(
      "rreg:n=128,d=6,seed=5,rreg:n=256,d=6,seed=5");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "rreg:n=128,d=6,seed=5");
  EXPECT_EQ(specs[1], "rreg:n=256,d=6,seed=5");
}

TEST(SweepSplit, BareFamilyStartsANewSpec) {
  const auto specs = bench::split_spec_list("complete:n=8,hypercube:dims=3");
  ASSERT_EQ(specs.size(), 2u);
  const auto mixed = bench::split_spec_list("gnp:n=2^10,avg_deg=8,lcc=1,ring:n=64");
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0], "gnp:n=2^10,avg_deg=8,lcc=1");
  EXPECT_EQ(mixed[1], "ring:n=64");
}

TEST(SweepSplit, SingleSpecPassesThrough) {
  const auto specs = bench::split_spec_list("torus:side=16,dims=2");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0], "torus:side=16,dims=2");
}

TEST(SweepSplit, UintListParsesAndRejects) {
  EXPECT_EQ(bench::split_uint_list("1,2,8"),
            (std::vector<std::size_t>{1, 2, 8}));
  EXPECT_THROW(bench::split_uint_list("1,x"), std::invalid_argument);
  EXPECT_THROW(bench::split_uint_list(""), std::invalid_argument);
}

TEST(SweepMerge, RoundTripCountsAndValidates) {
  const std::string child =
      "{\n  \"benchmark\": \"demo\",\n  \"context\": {},\n"
      "  \"records\": [\n    { \"name\": \"r\" }\n  ]\n}\n";
  ASSERT_TRUE(bench::looks_like_bench_json(child));
  std::vector<bench::SweepRun> runs = {
      {"bench_demo", "ring:n=64", 1, child},
      {"bench_demo", "ring:n=64", 2, child},
      {"bench_demo", "rreg:n=128,d=4", 1, child},
      {"bench_demo", "rreg:n=128,d=4", 2, child},
  };
  const std::string merged =
      bench::merge_sweep_json(runs, 4, {{"graph", "ring:n=64,rreg:n=128,d=4"}});
  EXPECT_EQ(bench::count_merged_runs(merged), 4u);
  EXPECT_EQ(bench::expected_runs_of(merged), 4u);
  std::string error;
  EXPECT_TRUE(bench::validate_merged_sweep(merged, 0, &error)) << error;
  EXPECT_TRUE(bench::validate_merged_sweep(merged, 4, &error)) << error;
  // Wrong expectation fails loudly.
  EXPECT_FALSE(bench::validate_merged_sweep(merged, 3, &error));
}

TEST(SweepMerge, DroppedRunFailsValidation) {
  const std::string child =
      "{ \"benchmark\": \"demo\", \"records\": [] }";
  std::vector<bench::SweepRun> runs = {{"bench_demo", "ring:n=64", 1, child}};
  // Promised 2, delivered 1 — the failure mode the CI step must catch.
  const std::string merged = bench::merge_sweep_json(runs, 2, {});
  std::string error;
  EXPECT_FALSE(bench::validate_merged_sweep(merged, 0, &error));
  EXPECT_NE(error.find("dropped"), std::string::npos);
}

TEST(SweepMerge, RejectsNonBenchJson) {
  EXPECT_FALSE(bench::looks_like_bench_json(""));
  EXPECT_FALSE(bench::looks_like_bench_json("{}"));
  EXPECT_FALSE(bench::looks_like_bench_json("not json at all"));
  EXPECT_FALSE(bench::looks_like_bench_json("{ \"benchmark\": \"x\" "));
}

TEST(Caps, RenderAndParseRoundTrip) {
  bench::BenchCaps caps;
  EXPECT_EQ(bench::parse_caps_graph(bench::render_caps(caps, {"trials"})),
            bench::BenchCaps::Graph::Effective);
  caps.graph = bench::BenchCaps::Graph::NoOp;
  const std::string line = bench::render_caps(caps, {"trials"});
  EXPECT_NE(line.find("graph=no"), std::string::npos);
  EXPECT_NE(line.find("trials"), std::string::npos);
  EXPECT_EQ(bench::parse_caps_graph(line), bench::BenchCaps::Graph::NoOp);
  caps.graph = bench::BenchCaps::Graph::Partial;
  EXPECT_EQ(bench::parse_caps_graph(bench::render_caps(caps, {})),
            bench::BenchCaps::Graph::Partial);
}

TEST(Caps, MissingTokenDefaultsToEffective) {
  EXPECT_EQ(bench::parse_caps_graph("whatever"),
            bench::BenchCaps::Graph::Effective);
}

TEST(Caps, GraphTokenTerminatedByNewlineOrEndOfLine) {
  // graph= as the last token (no trailing space) must still parse.
  EXPECT_EQ(bench::parse_caps_graph("bench-caps: graph=no\n"),
            bench::BenchCaps::Graph::NoOp);
  EXPECT_EQ(bench::parse_caps_graph("bench-caps: graph=partial"),
            bench::BenchCaps::Graph::Partial);
}

}  // namespace
