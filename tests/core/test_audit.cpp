// Tests for the runtime invariant auditor (core/audit.*): the pure checks
// against hand-built good and corrupted inputs, the sampling policy, the
// COBRA_AUDIT arming path, and the engine hook end-to-end — audited walks
// produce trajectories bit-identical to unaudited ones, and a planted
// contract breach trips a structured violation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/audit.hpp"
#include "core/cobra_walk.hpp"
#include "gen/registry.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace cobra;
namespace audit = core::audit;

struct AuditTest : ::testing::Test {
  void SetUp() override {
    audit::set_level(0);
    audit::set_throw_on_violation(true);
  }
  void TearDown() override {
    audit::set_level(0);
    audit::set_throw_on_violation(false);
    ::unsetenv("COBRA_AUDIT");
  }
};

// ------------------------------------------------------------ pure checks --

TEST_F(AuditTest, CanonicalListAcceptsStrictlyAscendingInRange) {
  const std::vector<graph::Vertex> good = {0, 3, 4, 9};
  std::string why;
  EXPECT_TRUE(audit::check_canonical_list(good, 10, &why)) << why;
  EXPECT_TRUE(audit::check_canonical_list({}, 10, &why)) << why;
}

TEST_F(AuditTest, CanonicalListRejectsDisorderDuplicatesAndRange) {
  std::string why;
  const std::vector<graph::Vertex> unsorted = {3, 1, 4};
  EXPECT_FALSE(audit::check_canonical_list(unsorted, 10, &why));
  const std::vector<graph::Vertex> dup = {1, 1, 4};
  EXPECT_FALSE(audit::check_canonical_list(dup, 10, &why));
  const std::vector<graph::Vertex> oob = {1, 4, 10};
  EXPECT_FALSE(audit::check_canonical_list(oob, 10, &why));
  EXPECT_FALSE(why.empty());
}

TEST_F(AuditTest, BitmapCheckVerifiesSizePopcountAndTail) {
  // n = 70: 2 words, tail bits 70-127 must be clear.
  std::vector<std::uint64_t> words(2, 0);
  words[0] = 0b1011;          // vertices 0, 1, 3
  words[1] = 1ULL << 5;       // vertex 69
  std::string why;
  EXPECT_TRUE(audit::check_bitmap(words, 4, 70, &why)) << why;
  EXPECT_FALSE(audit::check_bitmap(words, 3, 70, &why));  // popcount != count
  words[1] |= 1ULL << 7;  // vertex 71: beyond n, tail dirty
  EXPECT_FALSE(audit::check_bitmap(words, 5, 70, &why));
  EXPECT_FALSE(audit::check_bitmap(words, 4, 200, &why));  // wrong word count
}

TEST_F(AuditTest, StampCheckDemandsTheRoundsEpochOnEveryListedVertex) {
  const std::vector<graph::Vertex> list = {1, 3};
  std::vector<std::uint32_t> stamps = {0, 7, 0, 7, 0};
  std::string why;
  EXPECT_TRUE(audit::check_stamps(list, stamps, 7, &why)) << why;
  stamps[3] = 6;  // vertex 3 claims a stale epoch
  EXPECT_FALSE(audit::check_stamps(list, stamps, 7, &why));
  EXPECT_FALSE(why.empty());
}

// ------------------------------------------------------- arming / sampling --

TEST_F(AuditTest, SamplingPolicyMatchesTheLevel) {
  audit::set_level(0);
  EXPECT_FALSE(audit::enabled());
  audit::set_level(1);
  EXPECT_TRUE(audit::sample_round(0));
  EXPECT_FALSE(audit::sample_round(1));
  EXPECT_FALSE(audit::sample_round(15));
  EXPECT_TRUE(audit::sample_round(16));
  audit::set_level(2);
  for (std::uint64_t s = 0; s < 20; ++s) EXPECT_TRUE(audit::sample_round(s));
}

TEST_F(AuditTest, ArmFromEnvParsesLevelAndIgnoresGarbage) {
  ::setenv("COBRA_AUDIT", "2", 1);
  EXPECT_EQ(audit::arm_from_env(), 2);
  EXPECT_TRUE(audit::enabled());
  audit::set_level(0);
  ::setenv("COBRA_AUDIT", "banana", 1);
  EXPECT_EQ(audit::arm_from_env(), 0);
  EXPECT_FALSE(audit::enabled());
  ::unsetenv("COBRA_AUDIT");
  EXPECT_EQ(audit::arm_from_env(), 0);
}

TEST_F(AuditTest, ReportViolationCountsAndThrowsInTestMode) {
  const std::uint64_t before = obs::registry().counter("audit.violations").value();
  EXPECT_THROW(audit::report_violation("canonical-order", "test breach"),
               std::logic_error);
  EXPECT_EQ(obs::registry().counter("audit.violations").value(), before + 1);
}

// ------------------------------------------------------------ engine hook --

TEST_F(AuditTest, AuditedWalkMatchesUnauditedTrajectory) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=3");
  const auto run = [&](int level) {
    audit::set_level(level);
    core::CobraWalk walk(g, 0, 2);
    core::Engine gen(99);
    std::vector<std::vector<core::Vertex>> rounds;
    for (int i = 0; i < 16; ++i) {
      walk.step(gen);
      rounds.emplace_back(walk.active().begin(), walk.active().end());
    }
    audit::set_level(0);
    return rounds;
  };
  const auto plain = run(0);
  const auto sampled = run(1);
  const auto full = run(2);
  EXPECT_EQ(plain, sampled);
  EXPECT_EQ(plain, full);  // audits observe, never steer
}

TEST_F(AuditTest, EngineHookCatchesAPlantedCsrBreach) {
  // The Graph CSR constructor deliberately skips the arc-symmetry check
  // (validate() owns it), so an asymmetric CSR — arcs (0,2) and (2,1)
  // with no reverses — builds fine but is NOT an undirected graph. The
  // auditor's once-per-engine Graph::validate() hook must catch it on the
  // first audited round.
  const graph::Graph bad(3, {0, 2, 3, 4}, {1, 2, 0, 1});
  audit::set_level(2);
  core::CobraWalk walk(bad, 0, 2);
  core::Engine gen(5);
  bool violated = false;
  try {
    for (int i = 0; i < 4; ++i) walk.step(gen);
  } catch (const std::logic_error& e) {
    violated = true;
    EXPECT_NE(std::string(e.what()).find("audit violation"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("graph-csr"), std::string::npos);
  }
  EXPECT_TRUE(violated);
  audit::set_level(0);
}

}  // namespace
