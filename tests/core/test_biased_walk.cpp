#include "core/biased_walk.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/hitting_time.hpp"
#include "core/random_walk.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_cycle;
using graph::make_grid;
using graph::make_path;
using graph::make_star;

TEST(BiasedWalk, FullBiasWalksShortestPath) {
  // epsilon = 1: the controller decides every step, so the walk reaches the
  // target in exactly dist(start, target) steps.
  const Graph g = make_grid(2, 6);
  const Vertex start = 0, target = 35;
  const auto dist = graph::bfs_distances(g, target);
  Engine gen(1);
  BiasedWalk walk(g, start, target, BiasSchedule::EpsilonBias, 1.0);
  std::uint64_t steps = 0;
  while (!walk.at_target()) {
    walk.step(gen);
    ++steps;
    ASSERT_LE(steps, 100u);
  }
  EXPECT_EQ(steps, dist[start]);
  EXPECT_EQ(walk.controlled_moves(), steps);
}

TEST(BiasedWalk, ZeroBiasNeverControls) {
  const Graph g = make_cycle(12);
  Engine gen(2);
  BiasedWalk walk(g, 0, 6, BiasSchedule::EpsilonBias, 0.0);
  for (int t = 0; t < 500; ++t) walk.step(gen);
  EXPECT_EQ(walk.controlled_moves(), 0u);
}

TEST(BiasedWalk, ControllerChoiceIsCloserNeighbor) {
  const Graph g = make_grid(2, 5);
  const Vertex target = 24;
  BiasedWalk walk(g, 0, target, BiasSchedule::InverseDegreeBias);
  const auto dist = graph::bfs_distances(g, target);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == target) continue;
    const Vertex c = walk.controller_choice(v);
    EXPECT_TRUE(g.has_edge(v, c));
    EXPECT_EQ(dist[c] + 1, dist[v]);
  }
}

TEST(BiasedWalk, MovesAlongEdges) {
  const Graph g = make_grid(2, 4);
  Engine gen(3);
  BiasedWalk walk(g, 0, 15, BiasSchedule::InverseDegreeBias);
  Vertex prev = walk.position();
  for (int t = 0; t < 200; ++t) {
    walk.step(gen);
    EXPECT_TRUE(g.has_edge(prev, walk.position()));
    prev = walk.position();
  }
}

TEST(BiasedWalk, BiasReducesHittingTime) {
  // On a cycle, hitting the antipode: biased walk should be much faster
  // than the unbiased walk (O(n) vs O(n^2)).
  const Graph g = make_cycle(64);
  Engine gen(4);
  constexpr int kTrials = 60;
  double biased_total = 0, unbiased_total = 0;
  for (int rep = 0; rep < kTrials; ++rep) {
    BiasedWalk biased(g, 0, 32, BiasSchedule::EpsilonBias, 0.5);
    const HitResult hb = run_to_hit(biased, 32, gen, 1u << 22);
    ASSERT_TRUE(hb.hit);
    biased_total += static_cast<double>(hb.steps);

    RandomWalk unbiased(g, 0);
    const HitResult hu = run_to_hit(unbiased, 32, gen, 1u << 22);
    ASSERT_TRUE(hu.hit);
    unbiased_total += static_cast<double>(hu.steps);
  }
  EXPECT_LT(biased_total * 3, unbiased_total);
}

TEST(BiasedWalk, InverseDegreeBiasOnStarFavorsTarget) {
  // Hub has degree n-1 (weak bias), leaves degree 1 (full bias). From a
  // leaf, the walk goes to the hub (only neighbor); from the hub it is
  // biased toward the target leaf with probability 1/(n-1) plus uniform
  // chance. Expected hitting time of a specific leaf from another leaf for
  // the plain walk is ~2(n-1); the inverse-degree walk halves-ish it.
  const Graph g = make_star(32);
  Engine gen(5);
  constexpr int kTrials = 300;
  double biased_total = 0, plain_total = 0;
  for (int rep = 0; rep < kTrials; ++rep) {
    const HitResult hb = inverse_degree_hit(g, 1, 2, gen);
    ASSERT_TRUE(hb.hit);
    biased_total += static_cast<double>(hb.steps);
    const HitResult hp = random_walk_hit(g, 1, 2, gen);
    ASSERT_TRUE(hp.hit);
    plain_total += static_cast<double>(hp.steps);
  }
  EXPECT_LT(biased_total, plain_total);
}

TEST(BiasedWalk, AtTargetMovesUniformly) {
  // Once at the target, there is no bias: all neighbors equally likely.
  const Graph g = make_cycle(10);
  Engine gen(6);
  int left = 0, right = 0;
  for (int rep = 0; rep < 10000; ++rep) {
    BiasedWalk walk(g, 5, 5, BiasSchedule::EpsilonBias, 1.0);
    walk.step(gen);
    (walk.position() == 4 ? left : right) += 1;
  }
  EXPECT_NEAR(static_cast<double>(left) / (left + right), 0.5, 0.03);
}

TEST(BiasedWalk, InvalidConstruction) {
  const Graph g = make_path(4);
  EXPECT_THROW(BiasedWalk(g, 9, 0, BiasSchedule::EpsilonBias, 0.5),
               std::out_of_range);
  EXPECT_THROW(BiasedWalk(g, 0, 9, BiasSchedule::EpsilonBias, 0.5),
               std::out_of_range);
  EXPECT_THROW(BiasedWalk(g, 0, 3, BiasSchedule::EpsilonBias, 1.5),
               std::invalid_argument);
  EXPECT_THROW(BiasedWalk(g, 0, 3, BiasSchedule::EpsilonBias, -0.1),
               std::invalid_argument);
}

TEST(BiasedWalk, UnreachableTargetThrows) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_THROW(BiasedWalk(g, 0, 2, BiasSchedule::EpsilonBias, 0.5),
               std::invalid_argument);
}

TEST(BiasedWalk, ResetPreservesTarget) {
  const Graph g = make_cycle(8);
  Engine gen(7);
  BiasedWalk walk(g, 0, 4, BiasSchedule::EpsilonBias, 0.7);
  for (int t = 0; t < 10; ++t) walk.step(gen);
  walk.reset(2);
  EXPECT_EQ(walk.position(), 2u);
  EXPECT_EQ(walk.target(), 4u);
  EXPECT_EQ(walk.round(), 0u);
  EXPECT_EQ(walk.controlled_moves(), 0u);
}

}  // namespace
}  // namespace cobra::core
