#include "core/coalescing_walk.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;

TEST(Coalescing, DuplicatesMergeOnConstruction) {
  const Graph g = make_cycle(10);
  const std::vector<Vertex> starts{1, 1, 2, 3, 3, 3};
  CoalescingWalks walks(g, starts);
  EXPECT_EQ(walks.walker_count(), 3u);
  EXPECT_EQ(walks.merges(), 3u);
}

TEST(Coalescing, WalkerCountNeverIncreases) {
  const Graph g = make_grid(2, 5);
  std::vector<Vertex> starts(10);
  std::iota(starts.begin(), starts.end(), 0);
  Engine gen(1);
  CoalescingWalks walks(g, starts);
  std::uint32_t prev = walks.walker_count();
  for (int t = 0; t < 500; ++t) {
    walks.step(gen);
    EXPECT_LE(walks.walker_count(), prev);
    EXPECT_GE(walks.walker_count(), 1u);
    prev = walks.walker_count();
  }
}

TEST(Coalescing, PositionsAlwaysDistinct) {
  const Graph g = make_complete(20);
  std::vector<Vertex> starts{0, 1, 2, 3, 4, 5, 6, 7};
  Engine gen(2);
  CoalescingWalks walks(g, starts);
  for (int t = 0; t < 200; ++t) {
    walks.step(gen);
    const auto active = walks.active();
    const std::set<Vertex> unique(active.begin(), active.end());
    ASSERT_EQ(unique.size(), active.size());
  }
}

TEST(Coalescing, EventuallySingleOnCompleteGraph) {
  // On K_n coalescence is fast (meeting probability per step is high).
  const Graph g = make_complete(16);
  std::vector<Vertex> starts(16);
  std::iota(starts.begin(), starts.end(), 0);
  Engine gen(3);
  CoalescingWalks walks(g, starts);
  const std::uint64_t steps = walks.run_to_single(gen, 100000);
  EXPECT_EQ(walks.walker_count(), 1u);
  EXPECT_LT(steps, 100000u);
  EXPECT_EQ(walks.merges(), 15u);
}

TEST(Coalescing, MergeCountAccountsForAllLosses) {
  const Graph g = make_grid(2, 4);
  std::vector<Vertex> starts{0, 3, 12, 15, 5, 10};
  Engine gen(4);
  CoalescingWalks walks(g, starts);
  for (int t = 0; t < 1000; ++t) walks.step(gen);
  EXPECT_EQ(walks.walker_count() + walks.merges(), starts.size());
}

TEST(Coalescing, SingleWalkerIsStable) {
  const Graph g = make_cycle(8);
  Engine gen(5);
  CoalescingWalks walks(g, std::vector<Vertex>{4});
  for (int t = 0; t < 100; ++t) {
    walks.step(gen);
    EXPECT_EQ(walks.walker_count(), 1u);
  }
  EXPECT_EQ(walks.merges(), 0u);
}

TEST(Coalescing, RunToSingleRespectsBudget) {
  const Graph g = make_cycle(1000);
  Engine gen(6);
  CoalescingWalks walks(g, std::vector<Vertex>{0, 500});
  const std::uint64_t steps = walks.run_to_single(gen, 10);
  EXPECT_EQ(steps, 10u);
  EXPECT_EQ(walks.walker_count(), 2u);
}

TEST(Coalescing, InvalidInput) {
  const Graph g = make_cycle(5);
  EXPECT_THROW(CoalescingWalks(g, std::vector<Vertex>{}), std::invalid_argument);
  EXPECT_THROW(CoalescingWalks(g, std::vector<Vertex>{7}), std::out_of_range);
}

}  // namespace
}  // namespace cobra::core
