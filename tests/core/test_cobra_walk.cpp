#include "core/cobra_walk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;
using graph::make_path;
using graph::make_star;

TEST(CobraWalk, StartsWithSingleActiveVertex) {
  const Graph g = make_cycle(10);
  const CobraWalk walk(g, 3, 2);
  ASSERT_EQ(walk.active().size(), 1u);
  EXPECT_EQ(walk.active()[0], 3u);
  EXPECT_EQ(walk.round(), 0u);
  EXPECT_EQ(walk.branching(), 2u);
}

TEST(CobraWalk, InvalidConstruction) {
  const Graph g = make_cycle(5);
  EXPECT_THROW(CobraWalk(g, 0, 0), std::invalid_argument);   // k = 0
  EXPECT_THROW(CobraWalk(g, 5, 2), std::out_of_range);       // start
  EXPECT_THROW(CobraWalk(Graph{}, 0, 2), std::invalid_argument);
}

TEST(CobraWalk, ActiveSetIsAlwaysDuplicateFreeAndValid) {
  const Graph g = make_grid(2, 6);
  Engine gen(1);
  CobraWalk walk(g, 0, 2);
  for (int t = 0; t < 200; ++t) {
    walk.step(gen);
    const auto active = walk.active();
    std::set<Vertex> unique(active.begin(), active.end());
    EXPECT_EQ(unique.size(), active.size()) << "round " << t;
    for (const Vertex v : active) EXPECT_LT(v, g.num_vertices());
    EXPECT_GE(active.size(), 1u);
  }
}

TEST(CobraWalk, ActiveSetGrowthBoundedByBranching) {
  const Graph g = make_complete(64);
  Engine gen(2);
  CobraWalk walk(g, 0, 2);
  std::size_t prev = 1;
  for (int t = 0; t < 20; ++t) {
    walk.step(gen);
    EXPECT_LE(walk.active().size(), prev * 2);
    prev = walk.active().size();
  }
}

TEST(CobraWalk, NextActiveVerticesAreNeighborsOfCurrent) {
  const Graph g = make_cycle(12);
  Engine gen(3);
  CobraWalk walk(g, 5, 2);
  std::vector<Vertex> current(walk.active().begin(), walk.active().end());
  for (int t = 0; t < 50; ++t) {
    walk.step(gen);
    for (const Vertex v : walk.active()) {
      const bool adjacent =
          std::any_of(current.begin(), current.end(),
                      [&](Vertex u) { return g.has_edge(u, v); });
      EXPECT_TRUE(adjacent) << "vertex " << v << " round " << t;
    }
    current.assign(walk.active().begin(), walk.active().end());
  }
}

TEST(CobraWalk, BranchingOneIsSingleWalker) {
  const Graph g = make_grid(2, 5);
  Engine gen(4);
  CobraWalk walk(g, 0, 1);
  for (int t = 0; t < 100; ++t) {
    walk.step(gen);
    EXPECT_EQ(walk.active().size(), 1u);
  }
}

TEST(CobraWalk, DeterministicGivenSeed) {
  const Graph g = make_grid(2, 5);
  Engine g1(7), g2(7);
  CobraWalk a(g, 0, 2), b(g, 0, 2);
  for (int t = 0; t < 50; ++t) {
    a.step(g1);
    b.step(g2);
    ASSERT_EQ(std::vector<Vertex>(a.active().begin(), a.active().end()),
              std::vector<Vertex>(b.active().begin(), b.active().end()));
  }
}

TEST(CobraWalk, ResetRestoresInitialState) {
  const Graph g = make_cycle(9);
  Engine gen(5);
  CobraWalk walk(g, 2, 2);
  for (int t = 0; t < 30; ++t) walk.step(gen);
  walk.reset(7);
  EXPECT_EQ(walk.round(), 0u);
  EXPECT_EQ(walk.samples_drawn(), 0u);
  ASSERT_EQ(walk.active().size(), 1u);
  EXPECT_EQ(walk.active()[0], 7u);
}

TEST(CobraWalk, ResetFromSetCoalescesDuplicates) {
  const Graph g = make_cycle(9);
  CobraWalk walk(g, 0, 2);
  const std::vector<Vertex> starts{1, 2, 2, 3, 1};
  walk.reset(starts);
  EXPECT_EQ(walk.active().size(), 3u);
  EXPECT_THROW(walk.reset(std::vector<Vertex>{}), std::invalid_argument);
}

TEST(CobraWalk, SamplesDrawnAccounting) {
  const Graph g = make_complete(8);
  Engine gen(6);
  CobraWalk walk(g, 0, 3);
  walk.step(gen);  // 1 active * 3
  const std::uint64_t after_one = walk.samples_drawn();
  EXPECT_EQ(after_one, 3u);
  const std::uint64_t active_now = walk.active().size();
  walk.step(gen);
  EXPECT_EQ(walk.samples_drawn(), after_one + active_now * 3);
}

TEST(CobraWalk, StarAlternatesHubAndLeaves) {
  // From the hub, all samples land on leaves; from leaves, all land on hub.
  const Graph g = make_star(20);
  Engine gen(8);
  CobraWalk walk(g, 0, 2);
  walk.step(gen);
  for (const Vertex v : walk.active()) EXPECT_NE(v, 0u);
  EXPECT_LE(walk.active().size(), 2u);
  walk.step(gen);
  ASSERT_EQ(walk.active().size(), 1u);
  EXPECT_EQ(walk.active()[0], 0u);
}

TEST(CobraWalk, TwoCobraOnEdgeGraphStaysPinned) {
  // K2: both samples always land on the single neighbor.
  const Graph g = make_path(2);
  Engine gen(9);
  CobraWalk walk(g, 0, 2);
  walk.step(gen);
  ASSERT_EQ(walk.active().size(), 1u);
  EXPECT_EQ(walk.active()[0], 1u);
  walk.step(gen);
  ASSERT_EQ(walk.active().size(), 1u);
  EXPECT_EQ(walk.active()[0], 0u);
}

TEST(CobraWalk, HighBranchingSaturatesCompleteGraph) {
  // k = 16 on K9: after one step from the start vertex, expect many of the
  // 8 neighbors active (coupon-collector-ish, not all, but > 4 w.h.p.).
  const Graph g = make_complete(9);
  Engine gen(10);
  CobraWalk walk(g, 0, 16);
  walk.step(gen);
  EXPECT_GE(walk.active().size(), 5u);
}

TEST(CobraWalk, ManyStepsNoStateCorruption) {
  // Long-run smoke: epoch stamping must never corrupt the active set.
  const Graph g = make_grid(2, 4);
  Engine gen(11);
  CobraWalk walk(g, 0, 2);
  for (int t = 0; t < 20000; ++t) {
    walk.step(gen);
    ASSERT_LE(walk.active().size(), g.num_vertices());
    ASSERT_GE(walk.active().size(), 1u);
  }
  EXPECT_EQ(walk.round(), 20000u);
}

}  // namespace
}  // namespace cobra::core
