#include "core/cover_time.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cobra_walk.hpp"
#include "core/random_walk.hpp"
#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;
using graph::make_path;
using graph::make_star;

TEST(CoverageTracker, AbsorbCountsNewOnly) {
  CoverageTracker tracker(5);
  const std::vector<Vertex> a{0, 1, 1, 2};
  EXPECT_EQ(tracker.absorb(a), 3u);
  EXPECT_EQ(tracker.covered_count(), 3u);
  const std::vector<Vertex> b{2, 3};
  EXPECT_EQ(tracker.absorb(b), 1u);
  EXPECT_EQ(tracker.covered_count(), 4u);
  EXPECT_FALSE(tracker.complete());
  const std::vector<Vertex> c{4};
  tracker.absorb(c);
  EXPECT_TRUE(tracker.complete());
  EXPECT_DOUBLE_EQ(tracker.fraction(), 1.0);
}

TEST(CoverageTracker, Reset) {
  CoverageTracker tracker(3);
  const std::vector<Vertex> all{0, 1, 2};
  tracker.absorb(all);
  EXPECT_TRUE(tracker.complete());
  tracker.reset();
  EXPECT_EQ(tracker.covered_count(), 0u);
  EXPECT_FALSE(tracker.is_covered(0));
}

TEST(CoverageTracker, EmptyGraphIsTriviallyComplete) {
  CoverageTracker tracker(0);
  EXPECT_TRUE(tracker.complete());
  EXPECT_DOUBLE_EQ(tracker.fraction(), 1.0);
}

TEST(RunToCover, SingleVertexGraphIsRejected) {
  // A one-vertex graph has no edges, so no walk can take a step; the
  // constructor refuses it (isolated vertex) rather than stepping into UB.
  const Graph g = make_path(1);
  EXPECT_THROW(CobraWalk(g, 0, 2), std::invalid_argument);
  // The two-vertex path is the smallest walkable graph and covers in 1 step.
  const Graph g2 = make_path(2);
  Engine gen(1);
  CobraWalk walk(g2, 0, 2);
  const CoverResult r = run_to_cover(walk, gen, 100);
  EXPECT_TRUE(r.covered);
  EXPECT_EQ(r.steps, 1u);
}

TEST(RunToCover, RespectsBudget) {
  const Graph g = make_cycle(1000);
  Engine gen(2);
  RandomWalk walk(g, 0);
  const CoverResult r = run_to_cover(walk, gen, 50);
  EXPECT_FALSE(r.covered);
  EXPECT_EQ(r.steps, 50u);
  EXPECT_LT(r.covered_count, 1000u);
  EXPECT_GE(r.covered_count, 1u);
}

TEST(RunToCover, CobraCoversSmallGrid) {
  const Graph g = make_grid(2, 4);
  Engine gen(3);
  const CoverResult r = cobra_cover(g, 0, 2, gen);
  EXPECT_TRUE(r.covered);
  EXPECT_GT(r.steps, 0u);
  EXPECT_EQ(r.covered_count, 16u);
}

TEST(RunToCover, RandomWalkCoversCycle) {
  const Graph g = make_cycle(12);
  Engine gen(4);
  const CoverResult r = random_walk_cover(g, 0, gen);
  EXPECT_TRUE(r.covered);
  // Cycle cover time is exactly n(n-1)/2 in expectation = 66; sanity range.
  EXPECT_GT(r.steps, 10u);
}

TEST(RunToCover, CompleteGraphCoverIsCouponCollector) {
  // Mean over trials should be near n * H_{n-1} ~ 12 * 3.02 ~ 36 for K12's
  // random walk (self-transitions excluded, so slightly less); just check
  // the scale.
  const Graph g = make_complete(12);
  Engine gen(5);
  double total = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    const CoverResult r = random_walk_cover(g, 0, gen);
    ASSERT_TRUE(r.covered);
    total += static_cast<double>(r.steps);
  }
  const double mean = total / kTrials;
  EXPECT_GT(mean, 20.0);
  EXPECT_LT(mean, 50.0);
}

TEST(RunToCover, HigherBranchingCoversFaster) {
  const Graph g = make_grid(2, 8);
  Engine gen(6);
  double k2_total = 0, k4_total = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    k2_total += static_cast<double>(cobra_cover(g, 0, 2, gen).steps);
    k4_total += static_cast<double>(cobra_cover(g, 0, 4, gen).steps);
  }
  EXPECT_LT(k4_total, k2_total);
}

TEST(RunToCover, WaltCoversWithManyPebbles) {
  const Graph g = make_complete(20);
  Engine gen(7);
  const CoverResult r = walt_cover(g, 0, 10, true, gen);
  EXPECT_TRUE(r.covered);
}

TEST(RunToCover, ParallelWalksCover) {
  const Graph g = make_cycle(30);
  Engine gen(8);
  const CoverResult one = parallel_walks_cover(g, 0, 1, gen);
  const CoverResult many = parallel_walks_cover(g, 0, 8, gen);
  EXPECT_TRUE(one.covered);
  EXPECT_TRUE(many.covered);
}

TEST(DefaultStepBudget, GenerousAndMonotone) {
  EXPECT_GE(default_step_budget(1), 1u << 20);
  EXPECT_GE(default_step_budget(100), 32ull * 100 * 100 * 100);
  EXPECT_GT(default_step_budget(1000), default_step_budget(100));
}

TEST(RunToCover, InitialActiveSetCountsAsCovered) {
  // Star covered from the hub with k = n-1 cobra: hub + all leaves sampled
  // in one step typically; but regardless, step 0 must mark the hub.
  const Graph g = make_star(5);
  Engine gen(9);
  CobraWalk walk(g, 0, 2);
  CoverageTracker tracker(g.num_vertices());
  tracker.absorb(walk.active());
  EXPECT_TRUE(tracker.is_covered(0));
  EXPECT_EQ(tracker.covered_count(), 1u);
}

}  // namespace
}  // namespace cobra::core
