// Failure-edge tests for the frontier engine: the 32-bit epoch counter
// wrapping mid-(resumed)-run, a forced-dense step on an extinct process,
// and dense-bitmap allocation failure degrading to the sparse path without
// changing results.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "core/generalized_cobra.hpp"
#include "core/gossip.hpp"
#include "gen/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "util/checkpoint_io.hpp"
#include "util/fault.hpp"

namespace {

using namespace cobra;

std::vector<core::Vertex> active_of(const core::CobraWalk& w) {
  return {w.active().begin(), w.active().end()};
}

struct EngineFailureTest : ::testing::Test {
  void SetUp() override { util::fault::disarm_all(); }
  void TearDown() override { util::fault::disarm_all(); }
};

TEST_F(EngineFailureTest, EpochWrapDuringResumedRunKeepsTheTrajectory) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=13");
  core::Engine gen(7);
  core::CobraWalk src(g, 0, 2);
  src.engine().options().mode = core::FrontierMode::ForceSparse;
  for (int i = 0; i < 10; ++i) src.step(gen);

  // Resume the run into a fresh process whose epoch counter sits one short
  // of the 32-bit wrap: the second sparse round crosses it, forcing the
  // stamp-array wipe. Trajectories must not notice.
  util::CheckpointWriter w;
  src.save_state(w);
  core::CobraWalk dst(g, 0, 2);
  dst.engine().options().mode = core::FrontierMode::ForceSparse;
  util::CheckpointReader r(w.buffer());
  dst.restore_state(r);
  dst.engine().set_epoch_for_testing(0xFFFFFFFEu);

  core::Engine ga = gen, gb = gen;
  for (int i = 0; i < 40; ++i) {
    src.step(ga);
    dst.step(gb);
    ASSERT_EQ(active_of(dst), active_of(src))
        << "trajectories diverged " << i << " rounds after the epoch wrap";
  }
}

TEST_F(EngineFailureTest, ForcedDenseStepOnExtinctProcessIsANoOp) {
  const graph::Graph g = gen::build_graph("ring:n=128");
  core::GeneralizedCobraWalk walk(
      g, 0, [](core::Vertex, std::uint64_t, core::Engine&) { return 0u; });
  walk.engine().options().mode = core::FrontierMode::ForceDense;
  core::Engine gen(4);
  walk.step(gen);  // zero branching: the whole population dies this round
  ASSERT_TRUE(walk.extinct());
  ASSERT_TRUE(walk.active().empty());
  // Stepping the extinct process under ForceDense must not touch the
  // bitmap machinery (expand returns before representation choice) —
  // no crash, no resurrection, and no dense rounds counted for it.
  const std::uint64_t dense_before = walk.engine().dense_rounds();
  for (int i = 0; i < 5; ++i) walk.step(gen);
  EXPECT_TRUE(walk.extinct());
  EXPECT_TRUE(walk.active().empty());
  EXPECT_EQ(walk.engine().dense_rounds(), dense_before);
}

TEST_F(EngineFailureTest, DenseAllocFailureFallsBackToSparseBitIdentically) {
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=9");
  // Reference: the same forced-dense run with no faults.
  core::Engine gen_ref(31);
  core::CobraWalk ref(g, 0, 2);
  ref.engine().options().mode = core::FrontierMode::ForceDense;
  const auto expected = core::run_to_cover(ref, gen_ref, 1u << 18);
  ASSERT_TRUE(expected.covered);

  // Faulty: every dense-bitmap acquisition fails, so every round demotes
  // to sparse. Representation is an optimization — results must be
  // bit-identical, round for round.
  util::fault::arm("frontier.dense_alloc");
  core::Engine gen_faulty(31);
  core::CobraWalk faulty(g, 0, 2);
  faulty.engine().options().mode = core::FrontierMode::ForceDense;
  const auto degraded = core::run_to_cover(faulty, gen_faulty, 1u << 18);
  EXPECT_TRUE(degraded.covered);
  EXPECT_EQ(degraded.steps, expected.steps);
  EXPECT_EQ(gen_faulty(), gen_ref());  // same randomness consumed
  EXPECT_EQ(faulty.engine().dense_fallbacks(), degraded.steps);
  EXPECT_EQ(faulty.engine().dense_rounds(), 0u);
  EXPECT_GT(util::fault::hits("frontier.dense_alloc"), 0u);
}

TEST_F(EngineFailureTest, MaterializeAllocFailureDecodesSeriallyBitIdentically) {
  // The span-overload output path: dense rounds decode the result bitmap
  // into a vertex list via materialize_bits. When the parallel decode's
  // offsets scratch cannot be allocated (frontier.materialize_alloc), the
  // engine degrades to the serial single-pass decode — same ascending
  // list by construction, so a pool-driven gossip run must be
  // round-for-round identical with the site armed.
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=21");
  par::ThreadPool pool(2);
  std::uint64_t fired = 0;
  const auto run = [&](bool faulted) {
    if (faulted) util::fault::arm("frontier.materialize_alloc");
    core::Engine gen(17);
    core::Gossip gossip(g, 0, core::GossipMode::Push);
    gossip.engine().options() = {64, 1, &pool};
    gossip.engine().options().mode = core::FrontierMode::ForceDense;
    std::vector<std::vector<core::Vertex>> rounds;
    while (!gossip.complete() && gossip.round() < 256) {
      gossip.step(gen);
      rounds.emplace_back(gossip.active().begin(), gossip.active().end());
    }
    if (faulted) fired = util::fault::fired("frontier.materialize_alloc");
    util::fault::disarm_all();
    return rounds;
  };
  const auto expected = run(false);
  const auto degraded = run(true);
  EXPECT_EQ(degraded, expected);
  EXPECT_GT(fired, 0u);
}

TEST_F(EngineFailureTest, MidRunAllocFailureSwitchesRepresentationSafely) {
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=9");
  core::Engine gen_ref(5);
  core::CobraWalk ref(g, 0, 2);
  ref.engine().options().mode = core::FrontierMode::ForceDense;
  const auto expected = core::run_to_cover(ref, gen_ref, 1u << 18);
  ASSERT_TRUE(expected.covered);

  // Dense storage vanishes from the 4th attempt onward — a run that
  // STARTS dense and loses the bitmap mid-flight.
  util::fault::arm("frontier.dense_alloc", 3);
  core::Engine gen_faulty(5);
  core::CobraWalk faulty(g, 0, 2);
  faulty.engine().options().mode = core::FrontierMode::ForceDense;
  const auto degraded = core::run_to_cover(faulty, gen_faulty, 1u << 18);
  EXPECT_TRUE(degraded.covered);
  EXPECT_EQ(degraded.steps, expected.steps);
  EXPECT_EQ(faulty.engine().dense_rounds(), 3u);
  EXPECT_GT(faulty.engine().dense_fallbacks(), 0u);
}

}  // namespace
