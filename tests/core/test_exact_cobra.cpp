#include "core/exact_cobra.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cover_time.hpp"
#include "core/hitting_time.hpp"
#include "graph/exact_hitting.hpp"
#include "graph/generators.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/summary.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;
using graph::make_path;
using graph::make_star;

TEST(ExactCobra, TransitionRowsAreDistributions) {
  const Graph g = make_cycle(5);
  const ExactCobra exact(g, 2);
  for (std::uint32_t a = 1; a < (1u << 5); ++a) {
    const auto& row = exact.transition_row(a);
    double total = 0.0;
    for (const double p : row) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "A=" << a;
    EXPECT_EQ(row[0], 0.0);  // active set never empties (k >= 1)
  }
}

TEST(ExactCobra, SingleEdgeGraphIsDeterministic) {
  // K2: from {0} the only next set is {1}. Hitting time 1, cover time 1.
  const Graph g = make_path(2);
  const ExactCobra exact(g, 2);
  EXPECT_NEAR(exact.expected_hitting_time(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(exact.expected_cover_time(0), 1.0, 1e-12);
}

TEST(ExactCobra, BranchingOneMatchesExactRandomWalkHitting) {
  // k = 1 is the simple random walk: the subset chain collapses to
  // singletons and must agree with the dense RW solver exactly.
  for (const Graph& g :
       {make_cycle(7), make_path(6), make_star(6), make_grid(2, 3)}) {
    const ExactCobra exact(g, 1);
    const auto rw = graph::exact_rw_hitting_times(g, 0);
    for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
      EXPECT_NEAR(exact.expected_hitting_time(u, 0), rw[u], 1e-7)
          << "n=" << g.num_vertices() << " u=" << u;
    }
  }
}

TEST(ExactCobra, BranchingOneCycleCoverClosedForm) {
  // RW cover time of C_n is n(n-1)/2 from any start.
  const Graph g = make_cycle(7);
  const ExactCobra exact(g, 1);
  EXPECT_NEAR(exact.expected_cover_time(0), 21.0, 1e-7);
}

TEST(ExactCobra, BranchingOnePathCoverClosedForm) {
  // RW cover of the path from an endpoint = H(0, n-1) = (n-1)^2.
  const Graph g = make_path(6);
  const ExactCobra exact(g, 1);
  EXPECT_NEAR(exact.expected_cover_time(0), 25.0, 1e-7);
}

TEST(ExactCobra, CobraHittingDominatedByRandomWalk) {
  // Exact statement of the speedup: for every pair, the 2-cobra hitting
  // time is <= the RW hitting time.
  for (const Graph& g : {make_cycle(7), make_grid(2, 3), make_star(7)}) {
    const ExactCobra cobra2(g, 2);
    const auto rw = graph::exact_rw_hitting_times(g, 0);
    for (graph::Vertex u = 1; u < g.num_vertices(); ++u) {
      EXPECT_LE(cobra2.expected_hitting_time(u, 0), rw[u] + 1e-9)
          << "n=" << g.num_vertices() << " u=" << u;
    }
  }
}

TEST(ExactCobra, CoverDominatedByRandomWalkCover) {
  for (const Graph& g : {make_cycle(6), make_path(5), make_grid(2, 2)}) {
    const ExactCobra cobra2(g, 2);
    const ExactCobra cobra1(g, 1);
    EXPECT_LE(cobra2.expected_cover_time(0),
              cobra1.expected_cover_time(0) + 1e-9);
  }
}

TEST(ExactCobra, MonteCarloMatchesExactHitting) {
  const Graph g = make_cycle(8);
  const ExactCobra exact(g, 2);
  const double truth = exact.expected_hitting_time(0, 4);
  par::MonteCarloOptions opts;
  opts.trials = 20000;
  opts.base_seed = 5;
  const auto samples = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(cobra_hit(g, 0, 4, 2, gen).steps);
      });
  const auto s = stats::summarize(samples);
  EXPECT_NEAR(s.mean, truth, 4.0 * s.sem) << "truth " << truth;
}

TEST(ExactCobra, MonteCarloMatchesExactCover) {
  const Graph g = make_grid(2, 2);  // 4 vertices
  const ExactCobra exact(g, 2);
  const double truth = exact.expected_cover_time(0);
  par::MonteCarloOptions opts;
  opts.trials = 20000;
  opts.base_seed = 6;
  const auto samples = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(cobra_cover(g, 0, 2, gen).steps);
      });
  const auto s = stats::summarize(samples);
  EXPECT_NEAR(s.mean, truth, 4.0 * s.sem) << "truth " << truth;
}

TEST(ExactCobra, MatthewsBoundHoldsExactly) {
  // cover <= h_max * H_{n-1}, both sides exact (Theorem 1 with the
  // explicit harmonic constant).
  for (const Graph& g : {make_cycle(7), make_star(7), make_grid(2, 2)}) {
    const ExactCobra exact(g, 2);
    double hmax = 0.0;
    for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
      for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
        if (u != v) {
          hmax = std::max(hmax, exact.expected_hitting_time(u, v));
        }
      }
    }
    double harmonic = 0.0;
    for (std::uint32_t j = 1; j < g.num_vertices(); ++j) harmonic += 1.0 / j;
    const double worst_cover = [&] {
      double w = 0.0;
      for (graph::Vertex s = 0; s < g.num_vertices(); ++s) {
        w = std::max(w, exact.expected_cover_time(s));
      }
      return w;
    }();
    EXPECT_LE(worst_cover, hmax * harmonic + 1e-9)
        << "n=" << g.num_vertices();
  }
}

TEST(ExactCobra, SymmetryOnVertexTransitiveGraphs) {
  // On the cycle, hitting times depend only on the distance.
  const Graph g = make_cycle(8);
  const ExactCobra exact(g, 2);
  const double h13 = exact.expected_hitting_time(1, 3);
  const double h57 = exact.expected_hitting_time(5, 7);
  const double h02 = exact.expected_hitting_time(0, 2);
  EXPECT_NEAR(h13, h57, 1e-9);
  EXPECT_NEAR(h13, h02, 1e-9);
  // And symmetry of direction.
  EXPECT_NEAR(exact.expected_hitting_time(0, 3),
              exact.expected_hitting_time(3, 0), 1e-9);
}

TEST(ExactCobra, InputValidation) {
  const Graph g = make_cycle(5);
  EXPECT_THROW(ExactCobra(g, 0), std::invalid_argument);
  EXPECT_THROW(ExactCobra(g, 3), std::invalid_argument);
  EXPECT_THROW(ExactCobra(make_cycle(12), 2), std::invalid_argument);  // n > 10
  const ExactCobra exact(g, 2);
  EXPECT_THROW((void)exact.expected_hitting_time(9, 0), std::out_of_range);
  EXPECT_THROW((void)exact.transition_row(0), std::out_of_range);
  // Cover limited to n <= 8.
  const Graph g10 = make_cycle(10);
  const ExactCobra exact10(g10, 2);
  EXPECT_THROW((void)exact10.expected_cover_time(0), std::invalid_argument);
  EXPECT_GT(exact10.expected_hitting_time(0, 5), 0.0);  // hitting still fine
}

}  // namespace
}  // namespace cobra::core
