#include "core/frontier_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/coalescing_walk.hpp"
#include "core/cobra_walk.hpp"
#include "core/generalized_cobra.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/distributions.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;
using graph::make_hypercube;
using graph::make_path;
using graph::make_random_regular;

constexpr std::size_t kChunk = 256;  // shared by every compared config

/// k=2 cobra-style sampler over `g` (the engine's canonical workload).
struct TwoSampler {
  const Graph* g;
  NeighborSampler pick;
  template <typename Rng, typename Sink>
  void operator()(Vertex v, Rng& rng, Sink&& sink) const {
    const auto nbrs = g->neighbors(v);
    sink(pick(nbrs, rng));
    sink(pick(nbrs, rng));
  }
};

std::vector<Vertex> run_rounds(const Graph& g, FrontierOptions opts,
                               std::uint64_t rounds) {
  FrontierEngine engine(g, opts);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> frontier(g.num_vertices());
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::vector<Vertex> next;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.expand(frontier, next, /*round_seed=*/0x5EED0000ULL + r, sampler);
    frontier.swap(next);
  }
  return frontier;
}

TEST(FrontierEngine, ParallelBitIdenticalToSerialAcrossThreadCounts) {
  Engine graph_gen(21);
  const Graph g = make_random_regular(graph_gen, 20000, 4);

  FrontierOptions serial;
  serial.chunk_size = kChunk;
  serial.parallel_threshold = static_cast<std::size_t>(-1);
  const std::vector<Vertex> reference = run_rounds(g, serial, 6);
  ASSERT_GT(reference.size(), 1000u);  // k=2 on an expander keeps Θ(n) alive

  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    FrontierOptions opts;
    opts.chunk_size = kChunk;
    opts.parallel_threshold = 1;
    opts.pool = &pool;
    EXPECT_EQ(run_rounds(g, opts, 6), reference) << threads << " threads";
  }
}

TEST(FrontierEngine, ParallelPathActuallyRuns) {
  Engine graph_gen(22);
  const Graph g = make_random_regular(graph_gen, 20000, 4);
  par::ThreadPool pool(2);
  FrontierOptions opts;
  opts.chunk_size = kChunk;
  opts.parallel_threshold = 1;
  opts.pool = &pool;
  FrontierEngine engine(g, opts);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> frontier(g.num_vertices());
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::vector<Vertex> next;
  engine.expand(frontier, next, 7, sampler);
  EXPECT_EQ(engine.parallel_rounds(), 1u);
  EXPECT_EQ(engine.serial_rounds(), 0u);
}

TEST(FrontierEngine, ParallelDenseOpsBitIdenticalToSerialOps) {
  // The dense rounds' parallelized fixed costs (bitmap clear + span
  // overload materialization) are value-independent, so toggling
  // parallel_dense_ops or the pool size must never change a frontier. The
  // cycle is large enough (words >= the helpers' engagement thresholds)
  // that both parallel helpers actually run.
  const Graph g = make_cycle(1u << 21);
  const auto run = [&](FrontierOptions opts) {
    opts.chunk_size = kChunk;
    opts.mode = FrontierMode::ForceDense;
    FrontierEngine engine(g, opts);
    const TwoSampler sampler{&g, NeighborSampler(g)};
    std::vector<Vertex> frontier(64);
    std::iota(frontier.begin(), frontier.end(), 0u);
    std::vector<Vertex> next;
    for (std::uint64_t r = 0; r < 5; ++r) {
      engine.expand(frontier, next, /*round_seed=*/0xD05E + r, sampler);
      frontier.swap(next);
    }
    EXPECT_EQ(engine.dense_rounds(), 5u);
    return frontier;
  };

  FrontierOptions serial;
  serial.parallel_threshold = static_cast<std::size_t>(-1);
  const std::vector<Vertex> reference = run(serial);
  ASSERT_FALSE(reference.empty());

  par::ThreadPool pool2(2), pool8(8);
  for (par::ThreadPool* pool : {&pool2, &pool8}) {
    for (const bool parallel_ops : {true, false}) {
      FrontierOptions opts;
      opts.parallel_threshold = 1;
      opts.pool = pool;
      opts.parallel_dense_ops = parallel_ops;
      EXPECT_EQ(run(opts), reference)
          << pool->size() << " threads, parallel_dense_ops=" << parallel_ops;
    }
  }
}

TEST(FrontierEngine, CobraWalkBitIdenticalAcrossPools) {
  Engine graph_gen(23);
  const Graph g = make_random_regular(graph_gen, 8192, 4);

  CobraWalk serial_walk(g, 0, 3);
  serial_walk.engine().options().chunk_size = kChunk;
  serial_walk.engine().options().parallel_threshold =
      static_cast<std::size_t>(-1);

  par::ThreadPool pool2(2), pool8(8);
  CobraWalk walk2(g, 0, 3), walk8(g, 0, 3);
  walk2.engine().options() = {kChunk, 1, &pool2};
  walk8.engine().options() = {kChunk, 1, &pool8};

  Engine e_serial(99), e2(99), e8(99);
  for (int t = 0; t < 25; ++t) {
    serial_walk.step(e_serial);
    walk2.step(e2);
    walk8.step(e8);
    const auto expected = std::vector<Vertex>(serial_walk.active().begin(),
                                              serial_walk.active().end());
    ASSERT_EQ(std::vector<Vertex>(walk2.active().begin(), walk2.active().end()),
              expected)
        << "round " << t << " (2 threads)";
    ASSERT_EQ(std::vector<Vertex>(walk8.active().begin(), walk8.active().end()),
              expected)
        << "round " << t << " (8 threads)";
  }
  EXPECT_GT(walk2.engine().parallel_rounds(), 0u);
  EXPECT_GT(walk8.engine().parallel_rounds(), 0u);
}

TEST(NeighborSampler, FastPathBitIdenticalToLemire) {
  // Q_4 is 4-regular: power-of-two degree, fast path armed.
  const Graph g = make_hypercube(4);
  const NeighborSampler pick(g);
  ASSERT_TRUE(pick.fast_path());

  Engine fast_gen(1234), generic_gen(1234);
  const auto nbrs = g.neighbors(5);
  for (int i = 0; i < 50000; ++i) {
    const Vertex fast = pick(nbrs, fast_gen);
    const Vertex generic = nbrs[static_cast<std::size_t>(
        rng::uniform_below(generic_gen, nbrs.size()))];
    ASSERT_EQ(fast, generic) << "draw " << i;
  }
  // Identical draw counts too: the engines stay in lock-step.
  EXPECT_EQ(fast_gen.state(), generic_gen.state());
}

TEST(NeighborSampler, FastPathIsUniform) {
  const Graph g = make_grid(2, 64, /*torus=*/true);  // 4-regular
  const NeighborSampler pick(g);
  ASSERT_TRUE(pick.fast_path());
  Engine gen(77);
  const auto nbrs = g.neighbors(0);
  std::vector<int> counts(nbrs.size(), 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const Vertex u = pick(nbrs, gen);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (nbrs[j] == u) {
        ++counts[j];
        break;
      }
    }
  }
  const double expect = kDraws / static_cast<double>(nbrs.size());
  for (const int c : counts) {
    EXPECT_NEAR(c, expect, 5.0 * std::sqrt(expect));  // ~5 sigma
  }
}

TEST(NeighborSampler, GenericPathForNonPow2AndDegreeOne) {
  Engine graph_gen(24);
  EXPECT_FALSE(NeighborSampler(make_hypercube(3)).fast_path());  // 3-regular
  EXPECT_FALSE(
      NeighborSampler(make_random_regular(graph_gen, 100, 6)).fast_path());
  EXPECT_FALSE(NeighborSampler(make_path(2)).fast_path());  // 1-regular
  EXPECT_FALSE(NeighborSampler(make_path(5)).fast_path());  // irregular
}

TEST(FrontierEngine, EmptyFrontierIsFreeAndKeepsEpoch) {
  const Graph g = make_cycle(16);
  FrontierEngine engine(g);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> next{3, 4};  // stale content must be cleared
  engine.expand({}, next, 1, sampler);
  EXPECT_TRUE(next.empty());
  EXPECT_EQ(engine.serial_rounds(), 0u);
  EXPECT_EQ(engine.parallel_rounds(), 0u);
}

TEST(FrontierEngine, ExtinctGeneralizedWalkStepsAreCheapNoOps) {
  const Graph g = make_cycle(16);
  GeneralizedCobraWalk walk(g, 0, schedules::faulty(2, 1.0));  // always drop
  Engine gen(5);
  walk.step(gen);
  ASSERT_TRUE(walk.extinct());
  const auto state_before = gen.state();
  for (int t = 0; t < 100; ++t) walk.step(gen);
  EXPECT_TRUE(walk.extinct());
  EXPECT_EQ(walk.round(), 101u);
  // No randomness consumed, no epoch advanced: the step is a pure counter.
  EXPECT_EQ(gen.state(), state_before);
}

/// Run `rounds` rounds through the Frontier-object API, recording the
/// materialized frontier after every round.
std::vector<std::vector<Vertex>> run_trajectory(const Graph& g,
                                                FrontierOptions opts,
                                                std::uint64_t rounds) {
  FrontierEngine engine(g, opts);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  Frontier frontier, next;
  engine.dedupe(all, frontier);
  std::vector<std::vector<Vertex>> trajectory;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Same seed schedule as run_rounds, so span-API and Frontier-API
    // trajectories are directly comparable.
    engine.expand(frontier, next, /*round_seed=*/0x5EED0000ULL + r, sampler);
    frontier.swap(next);
    const auto vs = frontier.vertices();
    trajectory.emplace_back(vs.begin(), vs.end());
  }
  return trajectory;
}

TEST(FrontierEngine, SparseAndDensePathsProduceIdenticalTrajectories) {
  Engine graph_gen(31);
  const Graph g = make_random_regular(graph_gen, 4096, 4);

  FrontierOptions sparse;
  sparse.chunk_size = kChunk;
  sparse.parallel_threshold = static_cast<std::size_t>(-1);
  sparse.mode = FrontierMode::ForceSparse;
  FrontierOptions dense = sparse;
  dense.mode = FrontierMode::ForceDense;
  FrontierOptions automatic = sparse;
  automatic.mode = FrontierMode::Auto;

  const auto ref = run_trajectory(g, sparse, 8);
  EXPECT_EQ(run_trajectory(g, dense, 8), ref);
  EXPECT_EQ(run_trajectory(g, automatic, 8), ref);
  // The span-in/vector-out API (gossip's path) must agree as well — it
  // shares the chunk streams, only the output plumbing differs.
  EXPECT_EQ(run_rounds(g, dense, 8), ref.back());
}

TEST(FrontierEngine, ForcedDenseBitIdenticalAcrossThreadCounts) {
  Engine graph_gen(32);
  const Graph g = make_random_regular(graph_gen, 20000, 4);

  FrontierOptions serial;
  serial.chunk_size = kChunk;
  serial.parallel_threshold = static_cast<std::size_t>(-1);
  serial.mode = FrontierMode::ForceDense;
  const auto reference = run_trajectory(g, serial, 6);
  ASSERT_GT(reference.back().size(), 1000u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    FrontierOptions opts = serial;
    opts.parallel_threshold = 1;
    opts.pool = &pool;
    EXPECT_EQ(run_trajectory(g, opts, 6), reference)
        << threads << " threads (forced dense)";
  }
}

TEST(FrontierEngine, DenseRoundsAreTakenAndCountedInAutoMode) {
  Engine graph_gen(33);
  const Graph g = make_random_regular(graph_gen, 20000, 4);
  FrontierOptions opts;
  opts.chunk_size = kChunk;
  opts.parallel_threshold = static_cast<std::size_t>(-1);
  FrontierEngine engine(g, opts);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  Frontier frontier, next;
  engine.dedupe(all, frontier);  // Θ(n) frontier: must run dense
  engine.expand(frontier, next, 9, sampler);
  EXPECT_EQ(engine.dense_rounds(), 1u);
  EXPECT_EQ(engine.sparse_rounds(), 0u);
  EXPECT_TRUE(next.dense());
  // The materialized view is sorted and duplicate-free by construction.
  const auto vs = next.vertices();
  EXPECT_EQ(next.size(), vs.size());
  EXPECT_TRUE(std::is_sorted(vs.begin(), vs.end()));
  EXPECT_TRUE(std::adjacent_find(vs.begin(), vs.end()) == vs.end());
}

TEST(FrontierEngine, SwitchHysteresisAcrossACoalescenceRun) {
  // Coalescing walks from every vertex of K_n: the walker set starts at
  // Θ(n) (dense) and shrinks to 1 (sparse), crossing the switch band on
  // the way down; a cobra walk from one vertex crosses it upward. With
  // dense_alpha = 8 on n = 1024 the engine enters dense above 128 and
  // leaves below 64 — inside that band the PREVIOUS representation must
  // stick (hysteresis), and the run must record exactly the transitions.
  const Graph g = make_complete(1024);
  CoalescingWalks walks(g, [] {
    std::vector<Vertex> all(1024);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }());
  auto& opts = walks.engine().options();
  opts.parallel_threshold = static_cast<std::size_t>(-1);
  opts.dense_alpha = 8.0;

  Engine gen(77);
  bool saw_band_round = false;
  while (walks.walker_count() > 1 && walks.round() < 100000) {
    const std::size_t before = walks.walker_count();
    const std::uint64_t dense_before = walks.engine().dense_rounds();
    walks.step(gen);
    if (before >= 64 && before <= 128) {
      // Inside the hysteresis band coming down from dense: stays dense.
      EXPECT_EQ(walks.engine().dense_rounds(), dense_before + 1)
          << "band round at walker count " << before;
      saw_band_round = true;
    }
  }
  EXPECT_EQ(walks.walker_count(), 1u);
  EXPECT_TRUE(saw_band_round);
  EXPECT_GT(walks.engine().dense_rounds(), 0u);
  EXPECT_GT(walks.engine().sparse_rounds(), 0u);
  EXPECT_EQ(walks.engine().switches(), 1u);  // dense -> sparse exactly once

  // And the trajectory is representation-independent: a forced-sparse twin
  // reproduces the identical walker sets round for round.
  CoalescingWalks sparse_twin(g, [] {
    std::vector<Vertex> all(1024);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }());
  sparse_twin.engine().options().parallel_threshold =
      static_cast<std::size_t>(-1);
  sparse_twin.engine().options().mode = FrontierMode::ForceSparse;
  Engine gen2(77);
  for (std::uint64_t r = 0; r < walks.round(); ++r) sparse_twin.step(gen2);
  EXPECT_EQ(std::vector<Vertex>(sparse_twin.active().begin(),
                                sparse_twin.active().end()),
            std::vector<Vertex>(walks.active().begin(), walks.active().end()));
}

TEST(FrontierEngine, EpochStampsSurviveInterleavedDenseRounds) {
  // Dense rounds never touch the epoch stamps; sparse rounds never touch
  // the bitmap. Alternating representations round by round on one engine
  // must therefore match the all-sparse reference exactly, including with
  // a dedupe() (epoch-consuming reset) spliced between rounds.
  Engine graph_gen(34);
  const Graph g = make_random_regular(graph_gen, 4096, 4);
  const TwoSampler sampler{&g, NeighborSampler(g)};

  auto run = [&](bool alternate) {
    FrontierOptions opts;
    opts.chunk_size = kChunk;
    opts.parallel_threshold = static_cast<std::size_t>(-1);
    opts.mode = FrontierMode::ForceSparse;
    FrontierEngine engine(g, opts);
    std::vector<Vertex> all(g.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    Frontier frontier, next;
    engine.dedupe(all, frontier);
    std::vector<std::vector<Vertex>> trajectory;
    for (std::uint64_t r = 0; r < 10; ++r) {
      engine.options().mode = (alternate && r % 2 == 1)
                                  ? FrontierMode::ForceDense
                                  : FrontierMode::ForceSparse;
      engine.expand(frontier, next, 0xAB0BAULL + r, sampler);
      frontier.swap(next);
      const auto vs = frontier.vertices();
      trajectory.emplace_back(vs.begin(), vs.end());
      if (r == 5) {
        // An interleaved reset-path dedupe burns an epoch; round results
        // must be unaffected (it is a fresh epoch either way).
        std::vector<Vertex> scratch_out;
        engine.dedupe(std::vector<Vertex>{1, 2, 1, 3}, scratch_out);
        EXPECT_EQ(scratch_out, (std::vector<Vertex>{1, 2, 3}));
      }
    }
    return trajectory;
  };

  EXPECT_EQ(run(/*alternate=*/true), run(/*alternate=*/false));
}

TEST(FrontierEngine, ParallelThresholdIsAWorkEstimate) {
  // 300 active vertices with branching_hint 8 is 2400 estimated samples:
  // above a threshold of 1000 even though the raw frontier is below it.
  Engine graph_gen(35);
  const Graph g = make_random_regular(graph_gen, 2048, 4);
  par::ThreadPool pool(2);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> frontier(300);
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::vector<Vertex> next;

  FrontierOptions opts;
  opts.chunk_size = kChunk;
  opts.parallel_threshold = 1000;
  opts.pool = &pool;
  opts.branching_hint = 8.0;
  FrontierEngine hinted(g, opts);
  hinted.expand(frontier, next, 3, sampler);
  EXPECT_EQ(hinted.parallel_rounds(), 1u);

  opts.branching_hint = 1.0;  // same frontier, honest hint: stays in-line
  FrontierEngine unhinted(g, opts);
  unhinted.expand(frontier, next, 3, sampler);
  EXPECT_EQ(unhinted.serial_rounds(), 1u);
  EXPECT_EQ(unhinted.parallel_rounds(), 0u);
}

TEST(FrontierEngine, DedupeKeepsFirstOccurrence) {
  const Graph g = make_cycle(8);
  FrontierEngine engine(g);
  const std::vector<Vertex> in{3, 1, 3, 2, 1, 7};
  std::vector<Vertex> out;
  engine.dedupe(in, out);
  EXPECT_EQ(out, (std::vector<Vertex>{3, 1, 2, 7}));
  // Epochs separate calls: a second dedupe starts fresh.
  engine.dedupe(in, out);
  EXPECT_EQ(out, (std::vector<Vertex>{3, 1, 2, 7}));
}

}  // namespace
}  // namespace cobra::core
