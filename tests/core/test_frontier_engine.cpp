#include "core/frontier_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/generalized_cobra.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/distributions.hpp"

namespace cobra::core {
namespace {

using graph::make_cycle;
using graph::make_grid;
using graph::make_hypercube;
using graph::make_path;
using graph::make_random_regular;

constexpr std::size_t kChunk = 256;  // shared by every compared config

/// k=2 cobra-style sampler over `g` (the engine's canonical workload).
struct TwoSampler {
  const Graph* g;
  NeighborSampler pick;
  template <typename Rng, typename Sink>
  void operator()(Vertex v, Rng& rng, Sink&& sink) const {
    const auto nbrs = g->neighbors(v);
    sink(pick(nbrs, rng));
    sink(pick(nbrs, rng));
  }
};

std::vector<Vertex> run_rounds(const Graph& g, FrontierOptions opts,
                               int rounds) {
  FrontierEngine engine(g, opts);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> frontier(g.num_vertices());
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::vector<Vertex> next;
  for (int r = 0; r < rounds; ++r) {
    engine.expand(frontier, next, /*round_seed=*/0x5EED0000ULL + r, sampler);
    frontier.swap(next);
  }
  return frontier;
}

TEST(FrontierEngine, ParallelBitIdenticalToSerialAcrossThreadCounts) {
  Engine graph_gen(21);
  const Graph g = make_random_regular(graph_gen, 20000, 4);

  FrontierOptions serial;
  serial.chunk_size = kChunk;
  serial.parallel_threshold = static_cast<std::size_t>(-1);
  const std::vector<Vertex> reference = run_rounds(g, serial, 6);
  ASSERT_GT(reference.size(), 1000u);  // k=2 on an expander keeps Θ(n) alive

  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    FrontierOptions opts;
    opts.chunk_size = kChunk;
    opts.parallel_threshold = 1;
    opts.pool = &pool;
    EXPECT_EQ(run_rounds(g, opts, 6), reference) << threads << " threads";
  }
}

TEST(FrontierEngine, ParallelPathActuallyRuns) {
  Engine graph_gen(22);
  const Graph g = make_random_regular(graph_gen, 20000, 4);
  par::ThreadPool pool(2);
  FrontierOptions opts;
  opts.chunk_size = kChunk;
  opts.parallel_threshold = 1;
  opts.pool = &pool;
  FrontierEngine engine(g, opts);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> frontier(g.num_vertices());
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::vector<Vertex> next;
  engine.expand(frontier, next, 7, sampler);
  EXPECT_EQ(engine.parallel_rounds(), 1u);
  EXPECT_EQ(engine.serial_rounds(), 0u);
}

TEST(FrontierEngine, CobraWalkBitIdenticalAcrossPools) {
  Engine graph_gen(23);
  const Graph g = make_random_regular(graph_gen, 8192, 4);

  CobraWalk serial_walk(g, 0, 3);
  serial_walk.engine().options().chunk_size = kChunk;
  serial_walk.engine().options().parallel_threshold =
      static_cast<std::size_t>(-1);

  par::ThreadPool pool2(2), pool8(8);
  CobraWalk walk2(g, 0, 3), walk8(g, 0, 3);
  walk2.engine().options() = {kChunk, 1, &pool2};
  walk8.engine().options() = {kChunk, 1, &pool8};

  Engine e_serial(99), e2(99), e8(99);
  for (int t = 0; t < 25; ++t) {
    serial_walk.step(e_serial);
    walk2.step(e2);
    walk8.step(e8);
    const auto expected = std::vector<Vertex>(serial_walk.active().begin(),
                                              serial_walk.active().end());
    ASSERT_EQ(std::vector<Vertex>(walk2.active().begin(), walk2.active().end()),
              expected)
        << "round " << t << " (2 threads)";
    ASSERT_EQ(std::vector<Vertex>(walk8.active().begin(), walk8.active().end()),
              expected)
        << "round " << t << " (8 threads)";
  }
  EXPECT_GT(walk2.engine().parallel_rounds(), 0u);
  EXPECT_GT(walk8.engine().parallel_rounds(), 0u);
}

TEST(NeighborSampler, FastPathBitIdenticalToLemire) {
  // Q_4 is 4-regular: power-of-two degree, fast path armed.
  const Graph g = make_hypercube(4);
  const NeighborSampler pick(g);
  ASSERT_TRUE(pick.fast_path());

  Engine fast_gen(1234), generic_gen(1234);
  const auto nbrs = g.neighbors(5);
  for (int i = 0; i < 50000; ++i) {
    const Vertex fast = pick(nbrs, fast_gen);
    const Vertex generic = nbrs[static_cast<std::size_t>(
        rng::uniform_below(generic_gen, nbrs.size()))];
    ASSERT_EQ(fast, generic) << "draw " << i;
  }
  // Identical draw counts too: the engines stay in lock-step.
  EXPECT_EQ(fast_gen.state(), generic_gen.state());
}

TEST(NeighborSampler, FastPathIsUniform) {
  const Graph g = make_grid(2, 64, /*torus=*/true);  // 4-regular
  const NeighborSampler pick(g);
  ASSERT_TRUE(pick.fast_path());
  Engine gen(77);
  const auto nbrs = g.neighbors(0);
  std::vector<int> counts(nbrs.size(), 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const Vertex u = pick(nbrs, gen);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (nbrs[j] == u) {
        ++counts[j];
        break;
      }
    }
  }
  const double expect = kDraws / static_cast<double>(nbrs.size());
  for (const int c : counts) {
    EXPECT_NEAR(c, expect, 5.0 * std::sqrt(expect));  // ~5 sigma
  }
}

TEST(NeighborSampler, GenericPathForNonPow2AndDegreeOne) {
  Engine graph_gen(24);
  EXPECT_FALSE(NeighborSampler(make_hypercube(3)).fast_path());  // 3-regular
  EXPECT_FALSE(
      NeighborSampler(make_random_regular(graph_gen, 100, 6)).fast_path());
  EXPECT_FALSE(NeighborSampler(make_path(2)).fast_path());  // 1-regular
  EXPECT_FALSE(NeighborSampler(make_path(5)).fast_path());  // irregular
}

TEST(FrontierEngine, EmptyFrontierIsFreeAndKeepsEpoch) {
  const Graph g = make_cycle(16);
  FrontierEngine engine(g);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> next{3, 4};  // stale content must be cleared
  engine.expand({}, next, 1, sampler);
  EXPECT_TRUE(next.empty());
  EXPECT_EQ(engine.serial_rounds(), 0u);
  EXPECT_EQ(engine.parallel_rounds(), 0u);
}

TEST(FrontierEngine, ExtinctGeneralizedWalkStepsAreCheapNoOps) {
  const Graph g = make_cycle(16);
  GeneralizedCobraWalk walk(g, 0, schedules::faulty(2, 1.0));  // always drop
  Engine gen(5);
  walk.step(gen);
  ASSERT_TRUE(walk.extinct());
  const auto state_before = gen.state();
  for (int t = 0; t < 100; ++t) walk.step(gen);
  EXPECT_TRUE(walk.extinct());
  EXPECT_EQ(walk.round(), 101u);
  // No randomness consumed, no epoch advanced: the step is a pure counter.
  EXPECT_EQ(gen.state(), state_before);
}

TEST(FrontierEngine, DedupeKeepsFirstOccurrence) {
  const Graph g = make_cycle(8);
  FrontierEngine engine(g);
  const std::vector<Vertex> in{3, 1, 3, 2, 1, 7};
  std::vector<Vertex> out;
  engine.dedupe(in, out);
  EXPECT_EQ(out, (std::vector<Vertex>{3, 1, 2, 7}));
  // Epochs separate calls: a second dedupe starts fresh.
  engine.dedupe(in, out);
  EXPECT_EQ(out, (std::vector<Vertex>{3, 1, 2, 7}));
}

}  // namespace
}  // namespace cobra::core
