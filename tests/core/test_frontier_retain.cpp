/// Tests for the engine's remove-from-frontier path (FrontierEngine::retain):
/// pure predicate filtering with canonical output, bit-identity across
/// thread counts and representations, the span overload, and the dedicated
/// removal-round audit (retain claims no vertices, so the expand path's
/// epoch/stamp check must NOT fire).

#include "core/frontier_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/audit.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace cobra::core {
namespace {

using graph::make_cycle;
using graph::make_random_regular;

constexpr std::size_t kChunk = 256;

/// k=2 cobra-style sampler (the expand half of expand/retain round pairs).
struct TwoSampler {
  const Graph* g;
  NeighborSampler pick;
  template <typename Rng, typename Sink>
  void operator()(Vertex v, Rng& rng, Sink&& sink) const {
    const auto nbrs = g->neighbors(v);
    sink(pick(nbrs, rng));
    sink(pick(nbrs, rng));
  }
};

/// Alternate expand (grow) and retain (shrink to even-parity survivors of
/// a round-dependent predicate) rounds, recording every post-retain
/// frontier. Exercises both directions of the dual representation.
std::vector<std::vector<Vertex>> run_expand_retain(const Graph& g,
                                                   FrontierOptions opts,
                                                   std::uint64_t rounds) {
  FrontierEngine engine(g, opts);
  const TwoSampler sampler{&g, NeighborSampler(g)};
  std::vector<Vertex> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  Frontier frontier, next;
  engine.dedupe(all, frontier);
  std::vector<std::vector<Vertex>> trajectory;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.expand(frontier, next, /*round_seed=*/0x2E7A1000ULL + r, sampler);
    frontier.swap(next);
    engine.retain(frontier, next,
                  [r](Vertex v) { return (v + static_cast<Vertex>(r)) % 3 != 0; });
    frontier.swap(next);
    const auto vs = frontier.vertices();
    trajectory.emplace_back(vs.begin(), vs.end());
  }
  return trajectory;
}

TEST(FrontierRetain, FiltersByPredicateKeepingCanonicalOrder) {
  const Graph g = make_cycle(100);
  FrontierEngine engine(g);
  std::vector<Vertex> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  Frontier frontier, next;
  engine.dedupe(all, frontier);
  engine.retain(frontier, next, [](Vertex v) { return v % 7 == 0; });
  std::vector<Vertex> expect;
  for (Vertex v = 0; v < 100; v += 7) expect.push_back(v);
  const auto vs = next.vertices();
  EXPECT_EQ(std::vector<Vertex>(vs.begin(), vs.end()), expect);
  EXPECT_EQ(next.size(), expect.size());
}

TEST(FrontierRetain, KeepAllKeepNoneAndEmptyInput) {
  const Graph g = make_cycle(64);
  FrontierEngine engine(g);
  std::vector<Vertex> all(64);
  std::iota(all.begin(), all.end(), 0u);
  Frontier frontier, next;
  engine.dedupe(all, frontier);

  engine.retain(frontier, next, [](Vertex) { return true; });
  EXPECT_EQ(next.size(), 64u);

  engine.retain(frontier, next, [](Vertex) { return false; });
  EXPECT_TRUE(next.empty());

  // Empty input: output cleared even if it held stale content.
  Frontier empty;
  engine.dedupe(std::vector<Vertex>{5}, next);
  ASSERT_EQ(next.size(), 1u);
  engine.retain(empty, next, [](Vertex) { return true; });
  EXPECT_TRUE(next.empty());
}

TEST(FrontierRetain, SparseAndDenseRepresentationsAgree) {
  Engine graph_gen(41);
  const Graph g = make_random_regular(graph_gen, 4096, 4);

  FrontierOptions sparse;
  sparse.chunk_size = kChunk;
  sparse.parallel_threshold = static_cast<std::size_t>(-1);
  sparse.mode = FrontierMode::ForceSparse;
  FrontierOptions dense = sparse;
  dense.mode = FrontierMode::ForceDense;
  FrontierOptions automatic = sparse;
  automatic.mode = FrontierMode::Auto;

  const auto ref = run_expand_retain(g, sparse, 8);
  ASSERT_FALSE(ref.back().empty());
  EXPECT_EQ(run_expand_retain(g, dense, 8), ref);
  EXPECT_EQ(run_expand_retain(g, automatic, 8), ref);
}

TEST(FrontierRetain, BitIdenticalAcrossThreadCountsBothModes) {
  Engine graph_gen(42);
  const Graph g = make_random_regular(graph_gen, 20000, 4);

  for (const FrontierMode mode :
       {FrontierMode::ForceSparse, FrontierMode::ForceDense}) {
    FrontierOptions serial;
    serial.chunk_size = kChunk;
    serial.parallel_threshold = static_cast<std::size_t>(-1);
    serial.mode = mode;
    const auto reference = run_expand_retain(g, serial, 6);
    ASSERT_GT(reference.back().size(), 100u);

    for (const std::size_t threads : {1u, 2u, 8u}) {
      par::ThreadPool pool(threads);
      FrontierOptions opts = serial;
      opts.parallel_threshold = 1;
      opts.pool = &pool;
      EXPECT_EQ(run_expand_retain(g, opts, 6), reference)
          << threads << " threads, dense=" << (mode == FrontierMode::ForceDense);
    }
  }
}

TEST(FrontierRetain, SpanOverloadAgreesWithFrontierOverload) {
  Engine graph_gen(43);
  const Graph g = make_random_regular(graph_gen, 2048, 4);
  FrontierEngine engine(g);
  std::vector<Vertex> list(g.num_vertices());
  std::iota(list.begin(), list.end(), 0u);
  const auto keep = [](Vertex v) { return v % 5 != 2; };

  std::vector<Vertex> out_list;
  engine.retain(std::span<const Vertex>(list), out_list, keep);

  Frontier frontier, next;
  engine.dedupe(list, frontier);
  engine.retain(frontier, next, keep);
  const auto vs = next.vertices();
  EXPECT_EQ(out_list, std::vector<Vertex>(vs.begin(), vs.end()));
}

TEST(FrontierRetain, AuditedRemovalRoundsPassAndObserveOnly) {
  // The expand path's stamp check would misfire on retain rounds (a retain
  // claims no vertices, so no stamp carries the current epoch); the
  // dedicated removal-round audit checks canonical shape only. Under full
  // auditing with throw-on-violation armed, interleaved expand/retain
  // rounds must run clean and produce the unaudited trajectory.
  audit::set_level(0);
  audit::set_throw_on_violation(true);
  Engine graph_gen(44);
  const Graph g = make_random_regular(graph_gen, 1024, 4);
  FrontierOptions opts;
  opts.chunk_size = kChunk;
  const auto plain = run_expand_retain(g, opts, 8);
  audit::set_level(2);
  std::vector<std::vector<Vertex>> audited;
  EXPECT_NO_THROW(audited = run_expand_retain(g, opts, 8));
  EXPECT_EQ(audited, plain);
  audit::set_level(0);
  audit::set_throw_on_violation(false);
}

}  // namespace
}  // namespace cobra::core
