#include "core/generalized_cobra.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;

TEST(GeneralizedCobra, FixedScheduleMatchesCobraWalkInDistribution) {
  // With the same engine stream and k = 2, the generalized walk and the
  // specialized CobraWalk consume randomness identically, so their active
  // sets coincide step for step.
  const Graph g = make_grid(2, 5);
  Engine g1(9), g2(9);
  CobraWalk specialized(g, 0, 2);
  GeneralizedCobraWalk generalized(g, 0, schedules::fixed(2));
  for (int t = 0; t < 100; ++t) {
    specialized.step(g1);
    generalized.step(g2);
    ASSERT_EQ(std::vector<Vertex>(specialized.active().begin(),
                                  specialized.active().end()),
              std::vector<Vertex>(generalized.active().begin(),
                                  generalized.active().end()))
        << "diverged at round " << t;
  }
}

TEST(GeneralizedCobra, ActiveSetsValid) {
  const Graph g = make_cycle(20);
  Engine gen(1);
  GeneralizedCobraWalk walk(g, 0, schedules::shifted_geometric(0.5));
  for (int t = 0; t < 500; ++t) {
    walk.step(gen);
    const auto active = walk.active();
    const std::set<Vertex> unique(active.begin(), active.end());
    ASSERT_EQ(unique.size(), active.size());
    for (const Vertex v : active) ASSERT_LT(v, g.num_vertices());
    ASSERT_FALSE(walk.extinct());  // k >= 1 always
  }
}

TEST(GeneralizedCobra, BernoulliMixtureMeanBetweenKs) {
  // Mean branching k + p: sample draw counts via samples_drawn.
  const Graph g = make_complete(16);
  Engine gen(2);
  GeneralizedCobraWalk walk(g, 0, schedules::bernoulli_mixture(2, 0.5));
  std::uint64_t active_total = 0;
  for (int t = 0; t < 4000; ++t) {
    active_total += walk.active().size();
    walk.step(gen);
  }
  const double mean_k = static_cast<double>(walk.samples_drawn()) /
                        static_cast<double>(active_total);
  EXPECT_NEAR(mean_k, 2.5, 0.05);
}

TEST(GeneralizedCobra, DegreeProportionalUsesDegrees) {
  // On a star with alpha = 1, the hub emits n-1 samples, leaves emit 1.
  const Graph g = graph::make_star(10);
  Engine gen(3);
  GeneralizedCobraWalk walk(g, 0, schedules::degree_proportional(g, 1.0));
  walk.step(gen);  // hub emits degree(hub) = 9 samples
  EXPECT_EQ(walk.samples_drawn(), 9u);
  const std::size_t leaves_active = walk.active().size();
  walk.step(gen);  // each active leaf has degree 1 and emits 1 sample
  EXPECT_EQ(walk.samples_drawn(), 9u + leaves_active);
}

TEST(GeneralizedCobra, FaultySheduleCanGoExtinct) {
  // fail_p = 1: every vertex drops; the walk dies after one step.
  const Graph g = make_cycle(8);
  Engine gen(4);
  GeneralizedCobraWalk walk(g, 0, schedules::faulty(2, 1.0));
  walk.step(gen);
  EXPECT_TRUE(walk.extinct());
  EXPECT_EQ(walk.active().size(), 0u);
}

TEST(GeneralizedCobra, FaultyScheduleSurvivesLowFailureOnExpander) {
  // With fail_p = 0.2 and k = 2 the effective branching is 1.6 > 1, so on
  // a complete graph the walk survives long horizons in most runs.
  const Graph g = make_complete(64);
  Engine gen(5);
  int survived = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    GeneralizedCobraWalk walk(g, 0, schedules::faulty(2, 0.2));
    for (int s = 0; s < 200 && !walk.extinct(); ++s) walk.step(gen);
    if (!walk.extinct()) ++survived;
  }
  EXPECT_GT(survived, 70);
}

TEST(GeneralizedCobra, PhasedScheduleSwitches) {
  const Graph g = make_complete(32);
  Engine gen(6);
  GeneralizedCobraWalk walk(g, 0, schedules::phased(1, 4, 10));
  // Rounds 0..9: k = 1, single walker.
  for (int t = 0; t < 10; ++t) {
    walk.step(gen);
    EXPECT_EQ(walk.active().size(), 1u);
  }
  // After the switch, branching kicks in.
  walk.step(gen);
  EXPECT_GT(walk.active().size(), 1u);
}

TEST(GeneralizedCobra, WorksWithCoverEngine) {
  const Graph g = make_grid(2, 5);
  Engine gen(7);
  GeneralizedCobraWalk walk(g, 0, schedules::bernoulli_mixture(2, 0.3));
  const CoverResult r = run_to_cover(walk, gen, 1u << 22);
  EXPECT_TRUE(r.covered);
}

TEST(GeneralizedCobra, ScheduleValidation) {
  const Graph g = make_cycle(5);
  EXPECT_THROW(schedules::fixed(0), std::invalid_argument);
  EXPECT_THROW(schedules::bernoulli_mixture(0, 0.5), std::invalid_argument);
  EXPECT_THROW(schedules::bernoulli_mixture(2, 1.5), std::invalid_argument);
  EXPECT_THROW(schedules::shifted_geometric(0.0), std::invalid_argument);
  EXPECT_THROW(schedules::degree_proportional(g, 0.0), std::invalid_argument);
  EXPECT_THROW(schedules::faulty(2, -0.1), std::invalid_argument);
  EXPECT_THROW(schedules::phased(0, 2, 5), std::invalid_argument);
  EXPECT_THROW(GeneralizedCobraWalk(g, 0, nullptr), std::invalid_argument);
}

TEST(GeneralizedCobra, HigherMeanBranchingCoversFaster) {
  const Graph g = make_grid(2, 8);
  Engine gen(8);
  double slow_total = 0, fast_total = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    GeneralizedCobraWalk slow(g, 0, schedules::bernoulli_mixture(1, 0.2));
    slow_total += static_cast<double>(run_to_cover(slow, gen, 1u << 24).steps);
    GeneralizedCobraWalk fast(g, 0, schedules::bernoulli_mixture(3, 0.2));
    fast_total += static_cast<double>(run_to_cover(fast, gen, 1u << 24).steps);
  }
  EXPECT_LT(fast_total, slow_total);
}

}  // namespace
}  // namespace cobra::core
