#include "core/gossip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cover_time.hpp"
#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_path;
using graph::make_star;

TEST(Gossip, StartsWithOneInformed) {
  const Graph g = make_cycle(10);
  const Gossip gossip(g, 4);
  EXPECT_EQ(gossip.informed_count(), 1u);
  EXPECT_TRUE(gossip.is_informed(4));
  EXPECT_FALSE(gossip.is_informed(5));
  EXPECT_FALSE(gossip.complete());
}

TEST(Gossip, InformedSetGrowsMonotonically) {
  const Graph g = make_complete(50);
  Engine gen(1);
  Gossip gossip(g, 0);
  std::uint32_t prev = 1;
  for (int t = 0; t < 30 && !gossip.complete(); ++t) {
    gossip.step(gen);
    EXPECT_GE(gossip.informed_count(), prev);
    // Push at most doubles the informed set per round.
    EXPECT_LE(gossip.informed_count(), 2 * prev);
    prev = gossip.informed_count();
  }
}

TEST(Gossip, PushCompletesOnCompleteGraphQuickly) {
  // Push on K_n completes in ~log2 n + ln n rounds; give 10x slack.
  const Graph g = make_complete(128);
  Engine gen(2);
  Gossip gossip(g, 0);
  int rounds = 0;
  while (!gossip.complete() && rounds < 120) {
    gossip.step(gen);
    ++rounds;
  }
  EXPECT_TRUE(gossip.complete());
  EXPECT_LT(rounds, 120);
}

TEST(Gossip, PushOnPathIsSlow) {
  // Push on a path can only extend the informed interval by one per side
  // per round (at best), so completing needs >= (n-1)/2 rounds.
  const Graph g = make_path(40);
  Engine gen(3);
  Gossip gossip(g, 20);
  int rounds = 0;
  while (!gossip.complete() && rounds < 100000) {
    gossip.step(gen);
    ++rounds;
  }
  EXPECT_TRUE(gossip.complete());
  EXPECT_GE(rounds, 19);
}

TEST(Gossip, PullCompletesOnStar) {
  // Pull with the hub informed: every leaf polls the hub each round, so one
  // round informs everyone.
  const Graph g = make_star(30);
  Engine gen(4);
  Gossip gossip(g, 0, GossipMode::Pull);
  gossip.step(gen);
  EXPECT_TRUE(gossip.complete());
}

TEST(Gossip, PushOnStarIsThrottled) {
  // Push with a leaf informed: the leaf informs the hub in round 1, then the
  // hub pushes one leaf per round -> ~n rounds.
  const Graph g = make_star(20);
  Engine gen(5);
  Gossip gossip(g, 1, GossipMode::Push);
  int rounds = 0;
  while (!gossip.complete() && rounds < 100000) {
    gossip.step(gen);
    ++rounds;
  }
  EXPECT_TRUE(gossip.complete());
  EXPECT_GE(rounds, 19);  // 18 remaining leaves, 1/round, plus hub round
}

TEST(Gossip, PushPullBeatsPushOnStar) {
  const Graph g = make_star(64);
  Engine gen(6);
  double push_total = 0, pushpull_total = 0;
  for (int rep = 0; rep < 20; ++rep) {
    Gossip push(g, 1, GossipMode::Push);
    while (!push.complete()) push.step(gen);
    push_total += static_cast<double>(push.round());
    Gossip pp(g, 1, GossipMode::PushPull);
    while (!pp.complete()) pp.step(gen);
    pushpull_total += static_cast<double>(pp.round());
  }
  EXPECT_LT(pushpull_total * 5, push_total);  // push-pull is drastically faster
}

TEST(Gossip, SnapshotSemantics) {
  // Vertices informed in round t must not push in round t (they start in
  // round t+1). On a path with push: the frontier advances at most one hop
  // per round.
  const Graph g = make_path(10);
  Engine gen(7);
  Gossip gossip(g, 0);
  for (int t = 0; t < 5; ++t) {
    gossip.step(gen);
    EXPECT_LE(gossip.informed_count(), static_cast<std::uint32_t>(t + 2));
  }
}

TEST(Gossip, ResetClearsState) {
  const Graph g = make_complete(10);
  Engine gen(8);
  Gossip gossip(g, 0);
  for (int t = 0; t < 5; ++t) gossip.step(gen);
  gossip.reset(3);
  EXPECT_EQ(gossip.informed_count(), 1u);
  EXPECT_TRUE(gossip.is_informed(3));
  EXPECT_EQ(gossip.round(), 0u);
}

TEST(Gossip, WorksWithCoverEngine) {
  const Graph g = make_complete(32);
  Engine gen(9);
  const CoverResult r = gossip_push_cover(g, 0, gen);
  EXPECT_TRUE(r.covered);
  EXPECT_GT(r.steps, 0u);
  EXPECT_LT(r.steps, 200u);
}

TEST(Gossip, InvalidConstruction) {
  EXPECT_THROW(Gossip(Graph{}, 0), std::invalid_argument);
  const Graph g = make_path(3);
  EXPECT_THROW(Gossip(g, 5), std::out_of_range);
}

TEST(Gossip, UninformedListIsExactComplement) {
  const Graph g = make_cycle(40);
  Engine gen(10);
  Gossip gossip(g, 7, GossipMode::PushPull);
  for (int t = 0; t < 30; ++t) {
    EXPECT_EQ(gossip.uninformed().size() + gossip.informed_count(),
              g.num_vertices());
    std::vector<char> seen(g.num_vertices(), 0);
    for (const Vertex v : gossip.uninformed()) {
      EXPECT_FALSE(gossip.is_informed(v));
      EXPECT_EQ(seen[v], 0) << "duplicate in uninformed list";
      seen[v] = 1;
    }
    if (gossip.complete()) break;
    gossip.step(gen);
  }
}

TEST(Gossip, PullRoundsAreThreadCountInvariant) {
  // Both phases run on the FrontierEngine, so the informed set after every
  // round must be bit-identical across pool sizes (chunked determinism),
  // including the pull phase over the maintained uninformed list.
  const Graph g = make_complete(600);
  auto run = [&](std::size_t threads) {
    par::ThreadPool pool(threads);
    Gossip gossip(g, 0, GossipMode::PushPull);
    gossip.engine().options().pool = &pool;
    gossip.engine().options().parallel_threshold = 16;
    gossip.engine().options().chunk_size = 64;
    Engine gen(11);
    std::vector<std::vector<Vertex>> informed_per_round;
    while (!gossip.complete() && gossip.round() < 100) {
      gossip.step(gen);
      informed_per_round.emplace_back(gossip.active().begin(),
                                      gossip.active().end());
    }
    return informed_per_round;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

}  // namespace
}  // namespace cobra::core
