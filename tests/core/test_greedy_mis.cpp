/// Unit tests for the parallel randomized greedy MIS process: the winner
/// predicate against hand-evaluated priorities, independence/maximality at
/// extinction, degenerate graphs, reset reproducibility, and the no-op
/// contract once done.

#include "core/greedy_mis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generators.hpp"
#include "rng/splitmix64.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_kary_tree;
using graph::make_random_regular;
using graph::make_star;

void run_to_done(GreedyMIS& mis, Engine& gen) {
  for (int guard = 0; guard < 100000 && !mis.done(); ++guard) mis.step(gen);
  ASSERT_TRUE(mis.done());
}

void expect_independent_and_maximal(const Graph& g, const GreedyMIS& mis) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    bool dominated = mis.in_mis(v);
    for (const Vertex u : g.neighbors(v)) {
      if (u == v) continue;
      if (mis.in_mis(u)) {
        EXPECT_FALSE(mis.in_mis(v)) << "edge (" << v << "," << u << ") inside";
        dominated = true;
      }
    }
    EXPECT_TRUE(dominated) << "vertex " << v << " undominated (not maximal)";
  }
}

TEST(GreedyMIS, FirstRoundWinnersAreExactlyTheHashLocalMinima) {
  const Graph g = make_cycle(12);
  GreedyMIS mis(g);
  Engine gen(321), twin(321);
  const std::uint64_t round_seed = twin();  // the one draw step() makes
  mis.step(gen);

  std::vector<Vertex> expect;
  for (Vertex v = 0; v < 12; ++v) {
    const std::uint64_t pv = rng::derive_seed(round_seed, v);
    bool minimal = true;
    for (const Vertex u : g.neighbors(v)) {
      const std::uint64_t pu = rng::derive_seed(round_seed, u);
      if (pu < pv || (pu == pv && u < v)) minimal = false;
    }
    if (minimal) expect.push_back(v);
  }
  ASSERT_FALSE(expect.empty());
  const auto got = mis.mis();
  EXPECT_EQ(std::vector<Vertex>(got.begin(), got.end()), expect);
  EXPECT_EQ(mis.last_winners(), expect.size());

  // Winners and their neighbors left the active set; everyone else stayed.
  std::set<Vertex> gone;
  for (const Vertex w : expect) {
    gone.insert(w);
    for (const Vertex u : g.neighbors(w)) gone.insert(u);
  }
  const auto active = mis.active();
  EXPECT_EQ(active.size(), 12u - gone.size());
  for (const Vertex v : active) EXPECT_FALSE(gone.contains(v));
}

TEST(GreedyMIS, IndependentAndMaximalAtExtinction) {
  Engine graph_gen(51);
  const std::vector<Graph> graphs = {
      make_cycle(97),      make_complete(32),
      make_star(64),       make_kary_tree(3, 5),
      make_random_regular(graph_gen, 512, 6)};
  std::uint64_t seed = 100;
  for (const Graph& g : graphs) {
    GreedyMIS mis(g);
    Engine gen(seed++);
    run_to_done(mis, gen);
    expect_independent_and_maximal(g, mis);
    // The collected list is canonical and consistent with the flags.
    const auto m = mis.mis();
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
    EXPECT_TRUE(std::adjacent_find(m.begin(), m.end()) == m.end());
    for (const Vertex v : m) EXPECT_TRUE(mis.in_mis(v));
  }
}

TEST(GreedyMIS, CompleteGraphFinishesInOneRoundWithOneVertex) {
  const Graph g = make_complete(64);
  GreedyMIS mis(g);
  Engine gen(9);
  mis.step(gen);
  EXPECT_TRUE(mis.done());
  EXPECT_EQ(mis.round(), 1u);
  EXPECT_EQ(mis.mis().size(), 1u);
}

TEST(GreedyMIS, SingleVertexGraph) {
  const Graph g = graph::make_path(1);
  GreedyMIS mis(g);
  Engine gen(1);
  mis.step(gen);
  EXPECT_TRUE(mis.done());
  EXPECT_EQ(std::vector<Vertex>(mis.mis().begin(), mis.mis().end()),
            std::vector<Vertex>{0});
}

TEST(GreedyMIS, ResetReproducesTheRunExactly) {
  Engine graph_gen(52);
  const Graph g = make_random_regular(graph_gen, 256, 4);
  GreedyMIS mis(g);
  Engine gen1(77);
  run_to_done(mis, gen1);
  const std::vector<Vertex> first(mis.mis().begin(), mis.mis().end());
  const auto rounds = mis.round();

  mis.reset();
  EXPECT_FALSE(mis.done());
  EXPECT_EQ(mis.round(), 0u);
  EXPECT_EQ(mis.mis().size(), 0u);
  EXPECT_EQ(mis.active().size(), g.num_vertices());
  Engine gen2(77);
  run_to_done(mis, gen2);
  EXPECT_EQ(std::vector<Vertex>(mis.mis().begin(), mis.mis().end()), first);
  EXPECT_EQ(mis.round(), rounds);
}

TEST(GreedyMIS, StepAfterDoneIsAPureNoOp) {
  const Graph g = make_complete(8);
  GreedyMIS mis(g);
  Engine gen(5);
  run_to_done(mis, gen);
  const auto state = gen.state();
  const auto rounds = mis.round();
  const std::vector<Vertex> m(mis.mis().begin(), mis.mis().end());
  for (int t = 0; t < 50; ++t) mis.step(gen);
  EXPECT_EQ(gen.state(), state);  // no randomness consumed
  EXPECT_EQ(mis.round(), rounds);
  EXPECT_EQ(std::vector<Vertex>(mis.mis().begin(), mis.mis().end()), m);
}

TEST(GreedyMIS, SeedsActuallySteerTheOutcome) {
  // On an odd cycle the MIS is seed-dependent; over 32 seeds we must see
  // at least two distinct outcomes (the randomness is live, not vestigial).
  const Graph g = make_cycle(9);
  std::set<std::vector<Vertex>> outcomes;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    GreedyMIS mis(g);
    Engine gen(seed);
    run_to_done(mis, gen);
    outcomes.emplace(mis.mis().begin(), mis.mis().end());
  }
  EXPECT_GE(outcomes.size(), 2u);
}

}  // namespace
}  // namespace cobra::core
