#include "core/grid_drift.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace cobra::core {
namespace {

TEST(GridDrift, ConstructionAndAccessors) {
  GridDriftWalk walk(3, 10, 20);
  EXPECT_EQ(walk.dimensions(), 3u);
  EXPECT_EQ(walk.distance(0), 10u);
  EXPECT_EQ(walk.total_distance(), 30u);
  EXPECT_FALSE(walk.at_origin());
  EXPECT_EQ(walk.round(), 0u);
}

TEST(GridDrift, InvalidConstruction) {
  EXPECT_THROW(GridDriftWalk(std::vector<std::uint32_t>{}, 5),
               std::invalid_argument);
  EXPECT_THROW(GridDriftWalk(2, 3, 0), std::invalid_argument);
  EXPECT_THROW(GridDriftWalk(2, 9, 5), std::invalid_argument);
}

TEST(GridDrift, StepChangesAtMostOneDimensionByOne) {
  Engine gen(1);
  GridDriftWalk walk(4, 8, 16);
  for (int t = 0; t < 2000; ++t) {
    const auto before =
        std::vector<std::uint32_t>(walk.distances().begin(),
                                   walk.distances().end());
    const auto event = walk.step(gen);
    int changed = 0;
    for (std::uint32_t d = 0; d < 4; ++d) {
      const std::int64_t diff = static_cast<std::int64_t>(walk.distance(d)) -
                                static_cast<std::int64_t>(before[d]);
      EXPECT_LE(std::abs(diff), 1);
      if (diff != 0) {
        ++changed;
        EXPECT_EQ(event.dimension, static_cast<std::int32_t>(d));
        EXPECT_EQ(event.delta, static_cast<std::int32_t>(diff));
      }
    }
    EXPECT_LE(changed, 1);
    if (changed == 0) {
      EXPECT_EQ(event.dimension, -1);
    }
  }
}

TEST(GridDrift, Lemma4DecreaseBiasWhenNonzero) {
  // Lemma 4(b): conditioned on dimension i changing while z_i != 0, it
  // decreases with probability >= 1/2 + 1/(8d-4). Measure in the worst
  // configuration the lemma analyzes: one nonzero dimension among d.
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    Engine gen(100 + d);
    std::uint64_t decreases = 0, changes = 0;
    for (int t = 0; t < 400000; ++t) {
      std::vector<std::uint32_t> z(d, 5);  // all nonzero
      GridDriftWalk walk(z, 1000);
      const auto event = walk.step(gen);
      if (event.dimension >= 0) {
        ++changes;
        if (event.delta < 0) ++decreases;
      }
    }
    const double conditional =
        static_cast<double>(decreases) / static_cast<double>(changes);
    const double lemma_bound = 0.5 + 1.0 / (8.0 * d - 4.0);
    EXPECT_GE(conditional, lemma_bound - 0.01)
        << "d = " << d << " measured " << conditional;
  }
}

TEST(GridDrift, Lemma4ChangeProbabilityWhenNonzero) {
  // Lemma 4(a): a nonzero dimension changes with probability >= 1/(2d-1).
  // With all dimensions nonzero and interior, each dimension changes with
  // probability ~1/d >= 1/(2d-1).
  const std::uint32_t d = 3;
  Engine gen(7);
  std::uint64_t dim0_changes = 0;
  constexpr int kTrials = 300000;
  for (int t = 0; t < kTrials; ++t) {
    GridDriftWalk walk(d, 4, 100);
    const auto event = walk.step(gen);
    if (event.dimension == 0) ++dim0_changes;
  }
  const double p = static_cast<double>(dim0_changes) / kTrials;
  EXPECT_GE(p, 1.0 / (2.0 * d - 1.0) - 0.01);
}

TEST(GridDrift, Lemma4ZeroIncreaseProbability) {
  // Lemma 4(c): a dimension at 0 increases with probability <= 2/(d+1).
  for (const std::uint32_t d : {2u, 3u, 5u}) {
    Engine gen(200 + d);
    std::uint64_t increases = 0;
    constexpr int kTrials = 300000;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<std::uint32_t> z(d, 5);
      z[0] = 0;  // the dimension under test
      GridDriftWalk walk(z, 1000);
      const auto event = walk.step(gen);
      if (event.dimension == 0 && event.delta > 0) ++increases;
    }
    const double p = static_cast<double>(increases) / kTrials;
    EXPECT_LE(p, 2.0 / (d + 1.0) + 0.01) << "d = " << d;
  }
}

TEST(GridDrift, ReachesOriginAndStaysNear) {
  // Lemma 5 flavor: starting from distance n in each of d dimensions, the
  // origin is reached well within the O(d^2 n) budget.
  Engine gen(3);
  GridDriftWalk walk(2, 50, 100);
  const std::uint64_t steps = walk.run_to_origin(gen, 64ull * 4 * 50 * 100);
  EXPECT_TRUE(walk.at_origin());
  EXPECT_GT(steps, 50u);  // needs at least the initial distance in moves
}

TEST(GridDrift, OriginIsSticky) {
  // Lemma 6 flavor: once at the origin, excursions stay small. Track the
  // max total distance over a long horizon.
  Engine gen(4);
  GridDriftWalk walk(3, 0, 1000);
  std::uint64_t max_dist = 0;
  for (int t = 0; t < 200000; ++t) {
    walk.step(gen);
    max_dist = std::max(max_dist, walk.total_distance());
  }
  // c_d ln n with n = 1000: generous cap of 40.
  EXPECT_LT(max_dist, 40u);
}

TEST(GridDrift, ResetRestoresState) {
  Engine gen(5);
  GridDriftWalk walk(2, 5, 10);
  for (int t = 0; t < 50; ++t) walk.step(gen);
  const std::vector<std::uint32_t> fresh{1, 2};
  walk.reset(fresh);
  EXPECT_EQ(walk.distance(0), 1u);
  EXPECT_EQ(walk.distance(1), 2u);
  EXPECT_EQ(walk.round(), 0u);
  EXPECT_THROW(walk.reset(std::vector<std::uint32_t>{1}), std::invalid_argument);
  EXPECT_THROW(walk.reset(std::vector<std::uint32_t>{1, 99}),
               std::invalid_argument);
}

TEST(GridDrift, OneDimensionIsBiasedWalk) {
  // d = 1: both clones move in the same dimension; the selection rule keeps
  // a decreasing clone when one exists: P(decrease) = 3/4 interior.
  Engine gen(6);
  std::uint64_t decreases = 0;
  constexpr int kTrials = 200000;
  for (int t = 0; t < kTrials; ++t) {
    GridDriftWalk walk(1, 5, 100);
    const auto event = walk.step(gen);
    if (event.delta < 0) ++decreases;
  }
  EXPECT_NEAR(static_cast<double>(decreases) / kTrials, 0.75, 0.01);
}

}  // namespace
}  // namespace cobra::core
