#include "core/hitting_time.hpp"

#include <gtest/gtest.h>

#include "core/cobra_walk.hpp"
#include "core/random_walk.hpp"
#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_path;

TEST(RunToHit, TargetAlreadyActiveIsZero) {
  const Graph g = make_cycle(8);
  Engine gen(1);
  CobraWalk walk(g, 3, 2);
  const HitResult r = run_to_hit(walk, 3, gen, 100);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.steps, 0u);
}

TEST(RunToHit, RespectsBudget) {
  const Graph g = make_cycle(100000);
  Engine gen(2);
  RandomWalk walk(g, 0);
  const HitResult r = run_to_hit(walk, 50000, gen, 20);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.steps, 20u);
}

TEST(RunToHit, AdjacentVertexOnPathOfTwo) {
  const Graph g = make_path(2);
  Engine gen(3);
  const HitResult r = random_walk_hit(g, 0, 1, gen);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.steps, 1u);  // only one possible move
}

TEST(CobraHit, MeanMatchesKnownCycleScale) {
  // On a cycle, 2-cobra hitting time of the antipode is Θ(n) (grid d=1).
  const Graph g = make_cycle(32);
  Engine gen(4);
  double total = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    const HitResult r = cobra_hit(g, 0, 16, 2, gen);
    ASSERT_TRUE(r.hit);
    total += static_cast<double>(r.steps);
  }
  const double mean = total / kTrials;
  EXPECT_GT(mean, 16.0);   // at least the distance
  EXPECT_LT(mean, 500.0);  // far below RW's Θ(n^2) ~ 256+
}

TEST(CobraHit, FasterThanRandomWalkOnCycle) {
  const Graph g = make_cycle(64);
  Engine gen(5);
  double cobra_total = 0, rw_total = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const HitResult rc = cobra_hit(g, 0, 32, 2, gen);
    ASSERT_TRUE(rc.hit);
    cobra_total += static_cast<double>(rc.steps);
    const HitResult rr = random_walk_hit(g, 0, 32, gen);
    ASSERT_TRUE(rr.hit);
    rw_total += static_cast<double>(rr.steps);
  }
  EXPECT_LT(cobra_total * 2, rw_total);
}

TEST(EstimateHmax, ExhaustiveOnTinyGraph) {
  const Graph g = make_path(4);
  Engine gen(6);
  const HmaxEstimate est = estimate_cobra_hmax(g, 2, gen, 0, 20);
  EXPECT_TRUE(est.all_hit);
  EXPECT_EQ(est.pairs, 12u);  // 4*3 ordered pairs
  EXPECT_GT(est.hmax, 2.0);   // end-to-end needs >= 3 steps
  // The extremal pair should be an endpoint pair.
  EXPECT_TRUE((est.argmax_from == 0 && est.argmax_to == 3) ||
              (est.argmax_from == 3 && est.argmax_to == 0));
}

TEST(EstimateHmax, SampledPairs) {
  const Graph g = make_cycle(20);
  Engine gen(7);
  const HmaxEstimate est = estimate_cobra_hmax(g, 2, gen, 30, 5);
  EXPECT_TRUE(est.all_hit);
  EXPECT_LE(est.pairs, 30u);
  EXPECT_GT(est.pairs, 0u);
  EXPECT_GT(est.hmax, 0.0);
}

TEST(InverseDegreeHit, ReachesTarget) {
  const Graph g = make_complete(10);
  Engine gen(8);
  const HitResult r = inverse_degree_hit(g, 0, 5, gen);
  EXPECT_TRUE(r.hit);
  EXPECT_GE(r.steps, 1u);
}

}  // namespace
}  // namespace cobra::core
