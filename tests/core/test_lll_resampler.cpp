/// Unit tests for the Moser–Tardos LLL resampler: termination with an
/// all-satisfying assignment, the violated-frontier invariant against
/// brute-force re-evaluation every round, witness/counter bookkeeping,
/// reset reproducibility, and the no-op contract once satisfied.

#include "core/lll_resampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/constraints.hpp"

namespace cobra::core {
namespace {

void run_to_satisfied(LLLResampler& mt, Engine& gen) {
  for (int guard = 0; guard < 200000 && !mt.satisfied(); ++guard) mt.step(gen);
  ASSERT_TRUE(mt.satisfied());
}

/// Violated set recomputed from scratch — the invariant the incremental
/// touched-clause rebuild must match after every round.
std::vector<Vertex> brute_violated(const gen::ClauseSystem& sys,
                                   std::span<const std::uint8_t> assignment) {
  std::vector<Vertex> out;
  for (std::uint32_t c = 0; c < sys.num_clauses(); ++c) {
    if (!sys.satisfied(c, assignment)) out.push_back(c);
  }
  return out;
}

TEST(LLLResampler, TerminatesWithAnAllSatisfyingAssignment) {
  for (const std::uint32_t n : {64u, 256u, 1024u}) {
    const auto sys = gen::random_ksat(n, n + n / 2, 3, 0x11 + n);
    const graph::Graph deps = gen::dependency_graph(sys);
    LLLResampler mt(sys, deps, /*init_seed=*/5);
    Engine gen(n);
    run_to_satisfied(mt, gen);
    EXPECT_EQ(sys.count_violated(mt.assignment()), 0u) << "n=" << n;
    EXPECT_TRUE(mt.active().empty());
  }
}

TEST(LLLResampler, ViolatedFrontierMatchesBruteForceEveryRound) {
  const auto sys = gen::random_ksat(96, 144, 3, 21);
  const graph::Graph deps = gen::dependency_graph(sys);
  LLLResampler mt(sys, deps, /*init_seed=*/1);
  Engine gen(77);
  for (int r = 0; r < 64 && !mt.satisfied(); ++r) {
    const auto expect = brute_violated(sys, mt.assignment());
    const auto active = mt.active();
    ASSERT_EQ(std::vector<Vertex>(active.begin(), active.end()), expect)
        << "round " << r;
    mt.step(gen);
  }
  // And at the end, whichever came first.
  const auto expect = brute_violated(sys, mt.assignment());
  const auto active = mt.active();
  EXPECT_EQ(std::vector<Vertex>(active.begin(), active.end()), expect);
}

TEST(LLLResampler, WitnessRecordsEveryResampledClause) {
  const auto sys = gen::random_ksat(128, 192, 3, 31);
  const graph::Graph deps = gen::dependency_graph(sys);
  LLLResampler mt(sys, deps, /*init_seed=*/2);
  ASSERT_FALSE(mt.satisfied());  // a random init violates something
  Engine gen(8);
  std::uint64_t winners_sum = 0;
  std::uint64_t redraws_expected = 0;
  while (!mt.satisfied()) {
    const auto before = mt.witness().size();
    mt.step(gen);
    winners_sum += mt.last_winners();
    // Each winner resamples exactly its k variables (k = 3, all distinct).
    redraws_expected += mt.last_winners() * 3;
    ASSERT_EQ(mt.witness().size(), before + mt.last_winners());
    ASSERT_LE(mt.round(), 200000u);
  }
  EXPECT_EQ(mt.witness().size(), winners_sum);
  EXPECT_EQ(mt.var_resamples(), redraws_expected);
  for (const Vertex c : mt.witness()) EXPECT_LT(c, sys.num_clauses());
}

TEST(LLLResampler, ResetReproducesTheRunExactly) {
  const auto sys = gen::random_ksat(128, 192, 3, 41);
  const graph::Graph deps = gen::dependency_graph(sys);
  LLLResampler mt(sys, deps, /*init_seed=*/3);
  Engine gen1(55);
  run_to_satisfied(mt, gen1);
  const std::vector<std::uint8_t> first(mt.assignment().begin(),
                                        mt.assignment().end());
  const std::vector<Vertex> witness(mt.witness().begin(), mt.witness().end());
  const auto rounds = mt.round();

  mt.reset(3);
  EXPECT_EQ(mt.round(), 0u);
  EXPECT_EQ(mt.witness().size(), 0u);
  EXPECT_EQ(mt.var_resamples(), 0u);
  Engine gen2(55);
  run_to_satisfied(mt, gen2);
  EXPECT_EQ(std::vector<std::uint8_t>(mt.assignment().begin(),
                                      mt.assignment().end()),
            first);
  EXPECT_EQ(std::vector<Vertex>(mt.witness().begin(), mt.witness().end()),
            witness);
  EXPECT_EQ(mt.round(), rounds);

  // A different init seed starts from a different assignment (128
  // hash-drawn bits colliding with the finished run is astronomically
  // unlikely).
  mt.reset(4);
  EXPECT_NE(std::vector<std::uint8_t>(mt.assignment().begin(),
                                      mt.assignment().end()),
            first);
}

TEST(LLLResampler, StepAfterSatisfiedIsAPureNoOp) {
  const auto sys = gen::random_ksat(64, 96, 3, 51);
  const graph::Graph deps = gen::dependency_graph(sys);
  LLLResampler mt(sys, deps, /*init_seed=*/6);
  Engine gen(12);
  run_to_satisfied(mt, gen);
  const auto state = gen.state();
  const auto rounds = mt.round();
  const auto witness_len = mt.witness().size();
  for (int t = 0; t < 50; ++t) mt.step(gen);
  EXPECT_EQ(gen.state(), state);
  EXPECT_EQ(mt.round(), rounds);
  EXPECT_EQ(mt.witness().size(), witness_len);
}

TEST(LLLResampler, RejectsMismatchedDependencyGraph) {
  const auto sys = gen::random_ksat(32, 48, 3, 61);
  const auto other = gen::random_ksat(32, 40, 3, 61);
  const graph::Graph wrong = gen::dependency_graph(other);
  EXPECT_THROW(LLLResampler(sys, wrong, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::core
