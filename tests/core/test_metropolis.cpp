#include "core/metropolis_walk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;

TEST(Metropolis, SigmaHatBasics) {
  const Graph g = make_cycle(8);  // every degree 2: 1 - 1/d = 1/2
  const MetropolisWalk walk(g, 0);
  EXPECT_DOUBLE_EQ(walk.sigma_hat(0), 1.0);
  // Neighbor of the target: path {1} -> sigma = 1/2.
  EXPECT_NEAR(walk.sigma_hat(1), 0.5, 1e-12);
  EXPECT_NEAR(walk.sigma_hat(7), 0.5, 1e-12);
  // Distance-2 vertex: product over {2, 1} = 1/4.
  EXPECT_NEAR(walk.sigma_hat(2), 0.25, 1e-12);
  // Antipode at distance 4: (1/2)^4.
  EXPECT_NEAR(walk.sigma_hat(4), std::pow(0.5, 4), 1e-12);
}

TEST(Metropolis, SigmaHatMonotoneAlongPaths) {
  // sigma_hat(x) <= sigma_hat(neighbor closer to target) always.
  const Graph g = make_grid(2, 5, true);  // torus, min degree 4
  const MetropolisWalk walk(g, 12);
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    double best_neighbor = 0.0;
    for (const graph::Vertex u : g.neighbors(v)) {
      best_neighbor = std::max(best_neighbor, walk.sigma_hat(u));
    }
    if (v != 12) {
      EXPECT_LE(walk.sigma_hat(v), best_neighbor + 1e-12) << "v=" << v;
      EXPECT_GT(walk.sigma_hat(v), 0.0);
    }
  }
}

TEST(Metropolis, Lemma18BoundHolds) {
  // sigma_hat(x, v) <= e^{-p(x,v)}.
  core::Engine gen(1);
  for (const Graph& g :
       {make_cycle(12), make_grid(2, 4, true), make_complete(8),
        graph::make_random_regular(gen, 24, 4)}) {
    const MetropolisWalk walk(g, 0);
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_LE(walk.sigma_hat(v), walk.lemma18_bound(v) + 1e-9) << "v=" << v;
    }
  }
}

TEST(Metropolis, StationaryIsNormalizedAndTargetHeavy) {
  const Graph g = make_cycle(16);
  const MetropolisWalk walk(g, 5);
  const auto& pi = walk.stationary();
  const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The target gets the largest stationary mass on a regular graph.
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(pi[v], pi[5] + 1e-12);
  }
}

TEST(Metropolis, TransitionsAreInverseDegreeLegal) {
  // The derived chain P must satisfy P(x,y) >= (1 - 1/d(x))/d(x): that is
  // what makes it an inverse-degree-biased walk (s5.3's key derivation).
  core::Engine gen(2);
  for (const Graph& g : {make_cycle(10), make_grid(2, 4, true),
                         graph::make_random_regular(gen, 20, 4)}) {
    const MetropolisWalk walk(g, 3);
    EXPECT_GE(walk.min_transition_margin(), -1e-9);
  }
}

TEST(Metropolis, ReturnTimeWithinCorollary17Bound) {
  core::Engine gen(3);
  struct Case {
    std::string name;
    Graph g;
  };
  const std::vector<Case> cases = {
      {"cycle16", make_cycle(16)},
      {"torus4", make_grid(2, 4, true)},
      {"complete8", make_complete(8)},
      {"regular", graph::make_random_regular(gen, 24, 4)},
  };
  for (const auto& [name, g] : cases) {
    MetropolisWalk walk(g, 0);
    Engine run_gen(44);
    const double measured = walk.measure_return_time(run_gen, 400, 1u << 22);
    const double bound = walk.return_time_bound();
    // Corollary 17: expected return time <= bound. Allow 15% sampling slack.
    EXPECT_LE(measured, bound * 1.15) << name << " measured " << measured
                                      << " bound " << bound;
    EXPECT_GE(measured, 1.0);
  }
}

TEST(Metropolis, OccupancyMatchesStationary) {
  // Long-run occupancy of the target under P equals pi_P(target) which is
  // >= pi_M(target) (Lemma 16's conclusion). Check occupancy >= pi_M - eps.
  const Graph g = make_cycle(12);
  MetropolisWalk walk(g, 4);
  Engine gen(5);
  walk.reset(4);
  std::uint64_t at_target = 0;
  constexpr int kSteps = 400000;
  for (int t = 0; t < kSteps; ++t) {
    walk.step(gen);
    if (walk.position() == walk.target()) ++at_target;
  }
  const double occupancy = static_cast<double>(at_target) / kSteps;
  EXPECT_GE(occupancy, walk.stationary()[4] - 0.01);
}

TEST(Metropolis, RejectsBadInput) {
  EXPECT_THROW(MetropolisWalk(make_cycle(5), 9), std::out_of_range);
  // min degree < 2 (path) and disconnected graphs are rejected.
  EXPECT_THROW(MetropolisWalk(graph::make_path(5), 0), std::invalid_argument);
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_THROW(MetropolisWalk(b.build(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::core
