#include "core/pair_walk.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "graph/generators.hpp"
#include "graph/tensor_product.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_hypercube;

TEST(PairWalk, MovesAlongEdges) {
  const Graph g = make_cycle(10);
  Engine gen(1);
  PairWalk walk(g, 0, 5, /*lazy=*/false);
  Vertex prev_i = walk.position_i(), prev_j = walk.position_j();
  for (int t = 0; t < 300; ++t) {
    walk.step(gen);
    EXPECT_TRUE(g.has_edge(prev_i, walk.position_i()));
    EXPECT_TRUE(g.has_edge(prev_j, walk.position_j()));
    prev_i = walk.position_i();
    prev_j = walk.position_j();
  }
}

TEST(PairWalk, LazyFreezesBothTogether) {
  const Graph g = make_cycle(8);
  Engine gen(2);
  PairWalk walk(g, 0, 4, /*lazy=*/true);
  int frozen = 0;
  constexpr int kSteps = 8000;
  for (int t = 0; t < kSteps; ++t) {
    const auto before = walk.positions();
    walk.step(gen);
    // On C8 a non-lazy move always changes both positions (no self loops).
    if (walk.positions() == before) ++frozen;
  }
  EXPECT_NEAR(static_cast<double>(frozen) / kSteps, 0.5, 0.03);
}

TEST(PairWalk, CopyProbabilityWhenColocated) {
  // Co-located on K_n: j ends at i's destination w.p. 1/2 + 1/2(n-1).
  const Graph g = make_complete(11);  // d = 10
  Engine gen(3);
  int together = 0;
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    PairWalk walk(g, 4, 4, /*lazy=*/false);
    walk.step(gen);
    if (walk.collided()) ++together;
  }
  EXPECT_NEAR(static_cast<double>(together) / kTrials, 0.5 + 0.05, 0.01);
}

TEST(PairWalk, IndependentWhenApart) {
  // Apart on K11 (d = 10): both move to independent uniform neighbors;
  // the neighborhoods of 0 and 5 share 9 vertices, so the collision
  // probability is 9 * (1/10)^2 = 0.09.
  const Graph g = make_complete(11);
  Engine gen(4);
  int together = 0;
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    PairWalk walk(g, 0, 5, false);
    walk.step(gen);
    if (walk.collided()) ++together;
  }
  EXPECT_NEAR(static_cast<double>(together) / kTrials, 0.09, 0.01);
}

TEST(PairWalk, LongRunCollisionMatchesLemma11Stationary) {
  // After mixing, Pr[i and j at the same vertex] = n * pi(S1 vertex)
  // = 2n/(n^2+n) = 2/(n+1). Measure on K8 (well-mixing).
  const Graph g = make_complete(8);
  Engine gen(5);
  PairWalk walk(g, 0, 0, /*lazy=*/true);
  // Burn-in.
  for (int t = 0; t < 2000; ++t) walk.step(gen);
  std::uint64_t collided = 0;
  constexpr int kSteps = 300000;
  for (int t = 0; t < kSteps; ++t) {
    walk.step(gen);
    if (walk.collided()) ++collided;
  }
  EXPECT_NEAR(static_cast<double>(collided) / kSteps, 2.0 / 9.0, 0.01);
}

TEST(PairWalk, EmpiricalDistributionMatchesDigraphStationary) {
  // The simulated pair walk and the D(G x G) matrix walk are the same
  // process: long-run occupancy of each product state must match the
  // Eulerian closed form (diagonal states twice as likely).
  const Graph g = make_complete(5);
  const auto closed = graph::walt_pair_stationary(5);
  Engine gen(6);
  PairWalk walk(g, 0, 3, /*lazy=*/true);
  for (int t = 0; t < 2000; ++t) walk.step(gen);
  std::vector<std::uint64_t> visits(25, 0);
  constexpr int kSteps = 2000000;
  for (int t = 0; t < kSteps; ++t) {
    walk.step(gen);
    ++visits[walk.product_id()];
  }
  for (Vertex pv = 0; pv < 25; ++pv) {
    const double expected =
        graph::is_diagonal(pv, 5) ? closed.diagonal : closed.off_diagonal;
    EXPECT_NEAR(static_cast<double>(visits[pv]) / kSteps, expected, 0.004)
        << "pv=" << pv;
  }
}

TEST(PairWalk, CopyEventsCounted) {
  const Graph g = make_complete(6);
  Engine gen(7);
  PairWalk walk(g, 2, 2, false);
  walk.step(gen);
  // First step from co-location: copy happened or not; counter <= rounds.
  EXPECT_LE(walk.copy_events(), walk.round());
  walk.reset(0, 1);
  EXPECT_EQ(walk.copy_events(), 0u);
  EXPECT_EQ(walk.round(), 0u);
}

TEST(PairWalk, ProcessViewTracksTheProductState) {
  // The sim::Process view: active() is the one product-space state, n() is
  // the product-space size, and the cached id follows every transition
  // (ctor, step, reset).
  const Graph g = make_cycle(6);
  Engine gen(8);
  PairWalk walk(g, 2, 5, /*lazy=*/false);
  EXPECT_EQ(walk.n(), 36u);
  ASSERT_EQ(walk.active().size(), 1u);
  EXPECT_EQ(walk.active()[0], walk.product_id());
  EXPECT_EQ(walk.active()[0], 2u * 6u + 5u);
  for (int t = 0; t < 200; ++t) {
    walk.step(gen);
    ASSERT_EQ(walk.active()[0], walk.product_id()) << "round " << t;
  }
  walk.reset(1, 4);
  EXPECT_EQ(walk.active()[0], 1u * 6u + 4u);
}

TEST(PairWalk, InvalidConstruction) {
  const Graph g = make_cycle(5);
  EXPECT_THROW(PairWalk(g, 9, 0), std::out_of_range);
  EXPECT_THROW(PairWalk(g, 0, 9), std::out_of_range);
  EXPECT_THROW(PairWalk(Graph{}, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::core
