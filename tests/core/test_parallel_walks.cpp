#include "core/parallel_walks.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_cycle;
using graph::make_grid;
using graph::make_path;

TEST(ParallelWalks, FixedWalkerCount) {
  const Graph g = make_grid(2, 5);
  Engine gen(1);
  ParallelWalks walks(g, 0, 8);
  EXPECT_EQ(walks.walkers(), 8u);
  for (int t = 0; t < 100; ++t) {
    walks.step(gen);
    EXPECT_EQ(walks.active().size(), 8u);  // never coalesce, never branch
  }
}

TEST(ParallelWalks, EachWalkerMovesAlongEdges) {
  const Graph g = make_cycle(7);
  Engine gen(2);
  ParallelWalks walks(g, 3, 4);
  std::vector<Vertex> prev(walks.active().begin(), walks.active().end());
  for (int t = 0; t < 100; ++t) {
    walks.step(gen);
    const auto current = walks.active();
    for (std::size_t i = 0; i < current.size(); ++i) {
      EXPECT_TRUE(g.has_edge(prev[i], current[i]));
    }
    prev.assign(current.begin(), current.end());
  }
}

TEST(ParallelWalks, ExplicitStartPositions) {
  const Graph g = make_path(6);
  const std::vector<Vertex> starts{0, 5, 2};
  ParallelWalks walks(g, starts);
  EXPECT_EQ(walks.walkers(), 3u);
  EXPECT_EQ(walks.active()[0], 0u);
  EXPECT_EQ(walks.active()[1], 5u);
  EXPECT_EQ(walks.active()[2], 2u);
}

TEST(ParallelWalks, InvalidConstruction) {
  const Graph g = make_path(3);
  EXPECT_THROW(ParallelWalks(g, 0, 0), std::invalid_argument);
  EXPECT_THROW(ParallelWalks(g, 5, 2), std::out_of_range);
  EXPECT_THROW(ParallelWalks(g, std::vector<Vertex>{}), std::invalid_argument);
  EXPECT_THROW(ParallelWalks(g, std::vector<Vertex>{9}), std::out_of_range);
}

TEST(ParallelWalks, WalkersAreIndependent) {
  // Two walkers on a long cycle should decorrelate: they end up at different
  // positions in most runs.
  const Graph g = make_cycle(100);
  Engine gen(3);
  int distinct = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    ParallelWalks walks(g, 0, 2);
    for (int s = 0; s < 50; ++s) walks.step(gen);
    if (walks.active()[0] != walks.active()[1]) ++distinct;
  }
  EXPECT_GT(distinct, kTrials / 2);
}

TEST(ParallelWalks, ResetRestoresAll) {
  const Graph g = make_grid(2, 4);
  Engine gen(4);
  ParallelWalks walks(g, 0, 5);
  for (int t = 0; t < 20; ++t) walks.step(gen);
  walks.reset(7);
  EXPECT_EQ(walks.round(), 0u);
  for (const Vertex v : walks.active()) EXPECT_EQ(v, 7u);
}

}  // namespace
}  // namespace cobra::core
