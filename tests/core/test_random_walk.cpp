#include "core/random_walk.hpp"

#include <gtest/gtest.h>

#include <array>

#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_path;

TEST(RandomWalk, MovesToNeighborsOnly) {
  const Graph g = make_cycle(10);
  Engine gen(1);
  RandomWalk walk(g, 0);
  Vertex prev = walk.position();
  for (int t = 0; t < 500; ++t) {
    walk.step(gen);
    EXPECT_TRUE(g.has_edge(prev, walk.position()));
    prev = walk.position();
  }
  EXPECT_EQ(walk.round(), 500u);
}

TEST(RandomWalk, ActiveIsPosition) {
  const Graph g = make_path(5);
  RandomWalk walk(g, 2);
  ASSERT_EQ(walk.active().size(), 1u);
  EXPECT_EQ(walk.active()[0], 2u);
}

TEST(RandomWalk, InvalidConstruction) {
  const Graph g = make_path(3);
  EXPECT_THROW(RandomWalk(g, 3), std::out_of_range);
  EXPECT_THROW(RandomWalk(g, 0, -0.1), std::invalid_argument);
  EXPECT_THROW(RandomWalk(g, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(RandomWalk(Graph{}, 0), std::invalid_argument);
}

TEST(RandomWalk, LazinessKeepsPosition) {
  const Graph g = make_cycle(8);
  Engine gen(2);
  RandomWalk walk(g, 0, 0.5);
  int stays = 0;
  Vertex prev = walk.position();
  constexpr int kSteps = 10000;
  for (int t = 0; t < kSteps; ++t) {
    walk.step(gen);
    if (walk.position() == prev) ++stays;
    prev = walk.position();
  }
  EXPECT_NEAR(static_cast<double>(stays) / kSteps, 0.5, 0.02);
}

TEST(RandomWalk, UniformNeighborChoice) {
  // On K5 from vertex 0, each of the 4 neighbors equally likely.
  const Graph g = make_complete(5);
  Engine gen(3);
  std::array<int, 5> counts{};
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    RandomWalk walk(g, 0);
    walk.step(gen);
    ++counts[walk.position()];
  }
  EXPECT_EQ(counts[0], 0);
  for (std::size_t v = 1; v < 5; ++v) EXPECT_NEAR(counts[v], kTrials / 4, 500);
}

TEST(RandomWalk, ResetClearsRound) {
  const Graph g = make_path(4);
  Engine gen(4);
  RandomWalk walk(g, 0);
  walk.step(gen);
  walk.step(gen);
  walk.reset(3);
  EXPECT_EQ(walk.round(), 0u);
  EXPECT_EQ(walk.position(), 3u);
  EXPECT_THROW(walk.reset(4), std::out_of_range);
}

TEST(RandomWalk, ParityOnBipartiteGraph) {
  // A non-lazy walk on a path alternates vertex parity every step.
  const Graph g = make_path(10);
  Engine gen(5);
  RandomWalk walk(g, 4);
  for (unsigned t = 1; t <= 100; ++t) {
    walk.step(gen);
    EXPECT_EQ((walk.position() + t + 4) % 2, 0u) << "t = " << t;
  }
}

}  // namespace
}  // namespace cobra::core
