#include "core/sis_epidemic.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;

TEST(Sis, PatientZeroInitialState) {
  const Graph g = make_grid(2, 5);
  const SisEpidemic epi(g, 7);
  EXPECT_EQ(epi.prevalence(), 1u);
  EXPECT_EQ(epi.ever_infected(), 1u);
  EXPECT_FALSE(epi.everyone_exposed());
  ASSERT_EQ(epi.history().size(), 1u);
  EXPECT_EQ(epi.history()[0].prevalence, 1u);
  EXPECT_EQ(epi.history()[0].incidence, 1u);
}

TEST(Sis, EverInfectedIsMonotone) {
  const Graph g = make_grid(2, 6);
  Engine gen(1);
  SisEpidemic epi(g, 0);
  std::uint32_t prev = epi.ever_infected();
  for (int t = 0; t < 200; ++t) {
    const EpidemicRound r = epi.step(gen);
    EXPECT_GE(r.ever_infected, prev);
    EXPECT_EQ(r.ever_infected - prev, r.incidence);
    prev = r.ever_infected;
  }
}

TEST(Sis, AttackRateReachesOne) {
  const Graph g = make_complete(30);
  Engine gen(2);
  SisEpidemic epi(g, 0);
  const std::uint64_t steps = epi.run_until_all_exposed(gen, 100000);
  EXPECT_TRUE(epi.everyone_exposed());
  EXPECT_LT(steps, 100000u);
  EXPECT_DOUBLE_EQ(epi.attack_rate(), 1.0);
}

TEST(Sis, HistoryMatchesRounds) {
  const Graph g = make_cycle(20);
  Engine gen(3);
  SisEpidemic epi(g, 0);
  for (int t = 0; t < 50; ++t) epi.step(gen);
  ASSERT_EQ(epi.history().size(), 51u);
  for (std::size_t i = 0; i < epi.history().size(); ++i) {
    EXPECT_EQ(epi.history()[i].round, i);
  }
}

TEST(Sis, PrevalenceMatchesInfectedSpan) {
  const Graph g = make_grid(2, 4);
  Engine gen(4);
  SisEpidemic epi(g, 0, 3);
  for (int t = 0; t < 30; ++t) {
    epi.step(gen);
    EXPECT_EQ(epi.prevalence(), epi.infected().size());
  }
}

TEST(Sis, ResetRestartsOutbreak) {
  const Graph g = make_complete(12);
  Engine gen(5);
  SisEpidemic epi(g, 0);
  epi.run_until_all_exposed(gen, 10000);
  epi.reset(5);
  EXPECT_EQ(epi.prevalence(), 1u);
  EXPECT_EQ(epi.ever_infected(), 1u);
  EXPECT_EQ(epi.history().size(), 1u);
  EXPECT_EQ(epi.infected()[0], 5u);
}

TEST(Sis, MoreContactsSpreadFaster) {
  const Graph g = make_grid(2, 8);
  Engine gen(6);
  double k2_total = 0, k5_total = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    SisEpidemic slow(g, 0, 2);
    k2_total += static_cast<double>(slow.run_until_all_exposed(gen, 1u << 22));
    SisEpidemic fast(g, 0, 5);
    k5_total += static_cast<double>(fast.run_until_all_exposed(gen, 1u << 22));
  }
  EXPECT_LT(k5_total, k2_total);
}

}  // namespace
}  // namespace cobra::core
