#include "core/trajectory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/cobra_walk.hpp"
#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_grid;

TEST(Trajectory, RecordsEveryRound) {
  const Graph g = make_grid(2, 4);
  Engine gen(1);
  CobraWalk walk(g, 0, 2);
  TrajectoryRecorder rec(g.num_vertices());
  rec.record(walk);
  for (int t = 0; t < 20; ++t) {
    walk.step(gen);
    rec.record(walk);
  }
  ASSERT_EQ(rec.points().size(), 21u);
  EXPECT_EQ(rec.points()[0].round, 0u);
  EXPECT_EQ(rec.points()[0].active_size, 1u);
  EXPECT_EQ(rec.points()[0].covered, 1u);
  EXPECT_EQ(rec.points()[20].round, 20u);
}

TEST(Trajectory, CoverageIsMonotone) {
  const Graph g = make_grid(2, 5);
  Engine gen(2);
  CobraWalk walk(g, 0, 2);
  TrajectoryRecorder rec(g.num_vertices());
  rec.record(walk);
  for (int t = 0; t < 100; ++t) {
    walk.step(gen);
    rec.record(walk);
  }
  for (std::size_t i = 1; i < rec.points().size(); ++i) {
    EXPECT_GE(rec.points()[i].covered, rec.points()[i - 1].covered);
  }
}

TEST(Trajectory, PeakActiveTracksMaximum) {
  const Graph g = make_complete(32);
  Engine gen(3);
  CobraWalk walk(g, 0, 2);
  TrajectoryRecorder rec(g.num_vertices());
  rec.record(walk);
  std::uint32_t observed_peak = 1;
  for (int t = 0; t < 50; ++t) {
    walk.step(gen);
    rec.record(walk);
    observed_peak =
        std::max(observed_peak, static_cast<std::uint32_t>(walk.active().size()));
  }
  EXPECT_EQ(rec.peak_active(), observed_peak);
  EXPECT_GT(rec.peak_active(), 1u);  // branching must have grown the set
}

TEST(Trajectory, RoundAtCoverage) {
  const Graph g = make_complete(16);
  Engine gen(4);
  CobraWalk walk(g, 0, 3);
  TrajectoryRecorder rec(g.num_vertices());
  rec.record(walk);
  while (!rec.complete()) {
    walk.step(gen);
    rec.record(walk);
  }
  const auto half = rec.round_at_coverage(0.5);
  const auto full = rec.round_at_coverage(1.0);
  EXPECT_LE(half, full);
  EXPECT_NE(full, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(rec.round_at_coverage(0.0), 0u);
}

TEST(Trajectory, RoundAtCoverageUnreachedIsMax) {
  TrajectoryRecorder rec(10);
  EXPECT_EQ(rec.round_at_coverage(0.5),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Trajectory, ResetClearsEverything) {
  const Graph g = make_complete(8);
  Engine gen(5);
  CobraWalk walk(g, 0, 2);
  TrajectoryRecorder rec(g.num_vertices());
  rec.record(walk);
  walk.step(gen);
  rec.record(walk);
  rec.reset();
  EXPECT_TRUE(rec.points().empty());
  EXPECT_EQ(rec.covered_count(), 0u);
  EXPECT_EQ(rec.peak_active(), 0u);
}

}  // namespace
}  // namespace cobra::core
