#include "core/walt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "graph/generators.hpp"

namespace cobra::core {
namespace {

using graph::make_complete;
using graph::make_cycle;
using graph::make_grid;
using graph::make_path;

TEST(Walt, PebbleCountIsInvariant) {
  const Graph g = make_grid(2, 5);
  Engine gen(1);
  Walt walt(g, 0, 10, /*lazy=*/false);
  EXPECT_EQ(walt.pebble_count(), 10u);
  for (int t = 0; t < 200; ++t) {
    walt.step(gen);
    EXPECT_EQ(walt.pebbles().size(), 10u);
  }
}

TEST(Walt, OccupiedIsDistinctSetOfPebblePositions) {
  const Graph g = make_cycle(12);
  Engine gen(2);
  Walt walt(g, 0, 6, false);
  for (int t = 0; t < 100; ++t) {
    walt.step(gen);
    std::set<Vertex> expected(walt.pebbles().begin(), walt.pebbles().end());
    std::set<Vertex> actual(walt.active().begin(), walt.active().end());
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(walt.active().size(), expected.size());
  }
}

TEST(Walt, PebblesMoveAlongEdges) {
  const Graph g = make_grid(2, 4);
  Engine gen(3);
  Walt walt(g, 5, 4, false);
  std::vector<Vertex> prev(walt.pebbles().begin(), walt.pebbles().end());
  for (int t = 0; t < 100; ++t) {
    walt.step(gen);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      EXPECT_TRUE(g.has_edge(prev[i], walt.pebbles()[i]))
          << "pebble " << i << " round " << t;
    }
    prev.assign(walt.pebbles().begin(), walt.pebbles().end());
  }
}

TEST(Walt, RuleTwoThirdPebbleFollowsALeader) {
  // All pebbles co-located: after one (non-lazy) step every pebble must sit
  // on one of the first two pebbles' destinations.
  const Graph g = make_complete(30);
  Engine gen(4);
  for (int rep = 0; rep < 200; ++rep) {
    Walt walt(g, 0, 7, false);
    walt.step(gen);
    const auto pebbles = walt.pebbles();
    const Vertex u = pebbles[0];
    const Vertex w = pebbles[1];
    for (std::size_t i = 2; i < pebbles.size(); ++i) {
      EXPECT_TRUE(pebbles[i] == u || pebbles[i] == w)
          << "pebble " << i << " escaped to " << pebbles[i];
    }
    EXPECT_LE(walt.active().size(), 2u);
  }
}

TEST(Walt, RuleTwoCoinIsFair) {
  // With many followers and distinct leader destinations, followers split
  // roughly evenly between u and w.
  const Graph g = make_complete(50);
  Engine gen(5);
  double followers_to_u = 0, followers_total = 0;
  for (int rep = 0; rep < 500; ++rep) {
    Walt walt(g, 0, 22, false);
    walt.step(gen);
    const auto pebbles = walt.pebbles();
    const Vertex u = pebbles[0];
    const Vertex w = pebbles[1];
    if (u == w) continue;
    for (std::size_t i = 2; i < pebbles.size(); ++i) {
      followers_total += 1;
      if (pebbles[i] == u) followers_to_u += 1;
    }
  }
  EXPECT_NEAR(followers_to_u / followers_total, 0.5, 0.02);
}

TEST(Walt, SingleAndPairMoveIndependently) {
  // Two pebbles at the same vertex (rule 1): both move u.a.r.; over many
  // trials on a cycle their joint distribution covers all 4 combinations.
  const Graph g = make_cycle(10);
  Engine gen(6);
  std::map<std::pair<Vertex, Vertex>, int> joint;
  for (int rep = 0; rep < 4000; ++rep) {
    Walt walt(g, 5, 2, false);
    walt.step(gen);
    joint[{walt.pebbles()[0], walt.pebbles()[1]}]++;
  }
  // Destinations 4 and 6, each combination ~1000.
  EXPECT_EQ(joint.size(), 4u);
  for (const auto& [combo, count] : joint) {
    EXPECT_NEAR(count, 1000, 150) << combo.first << "," << combo.second;
  }
}

TEST(Walt, LazyFreezesWholeConfiguration) {
  const Graph g = make_grid(2, 4);
  Engine gen(7);
  Walt walt(g, 0, 5, /*lazy=*/true);
  int frozen = 0;
  std::vector<Vertex> prev(walt.pebbles().begin(), walt.pebbles().end());
  constexpr int kSteps = 4000;
  for (int t = 0; t < kSteps; ++t) {
    walt.step(gen);
    const bool same =
        std::equal(prev.begin(), prev.end(), walt.pebbles().begin());
    if (same) ++frozen;
    prev.assign(walt.pebbles().begin(), walt.pebbles().end());
  }
  EXPECT_EQ(walt.lazy_skips(), static_cast<std::uint64_t>(frozen));
  EXPECT_NEAR(static_cast<double>(frozen) / kSteps, 0.5, 0.03);
}

TEST(Walt, NonLazyNeverSkips) {
  const Graph g = make_cycle(6);
  Engine gen(8);
  Walt walt(g, 0, 3, false);
  for (int t = 0; t < 100; ++t) walt.step(gen);
  EXPECT_EQ(walt.lazy_skips(), 0u);
}

TEST(Walt, ExplicitStartPositions) {
  const Graph g = make_path(6);
  const std::vector<Vertex> starts{0, 3, 3, 5};
  Walt walt(g, starts, false);
  EXPECT_EQ(walt.pebble_count(), 4u);
  EXPECT_EQ(walt.active().size(), 3u);  // {0, 3, 5}
}

TEST(Walt, ResetValidation) {
  const Graph g = make_path(5);
  Walt walt(g, 0, 3, false);
  EXPECT_THROW(walt.reset(std::vector<Vertex>{0, 1}), std::invalid_argument);
  EXPECT_THROW(walt.reset(std::vector<Vertex>{0, 1, 9}), std::out_of_range);
  walt.reset(std::vector<Vertex>{0, 1, 2});
  EXPECT_EQ(walt.active().size(), 3u);
  EXPECT_EQ(walt.round(), 0u);
}

TEST(Walt, InvalidConstruction) {
  const Graph g = make_path(4);
  EXPECT_THROW(Walt(g, 0, 0, false), std::invalid_argument);
  EXPECT_THROW(Walt(g, 9, 2, false), std::out_of_range);
  EXPECT_THROW(Walt(Graph{}, 0, 2, false), std::invalid_argument);
}

TEST(Walt, ActiveSetNeverExceedsPebbles) {
  const Graph g = make_complete(40);
  Engine gen(9);
  Walt walt(g, 0, 15, true);
  for (int t = 0; t < 300; ++t) {
    walt.step(gen);
    EXPECT_LE(walt.active().size(), 15u);
    EXPECT_GE(walt.active().size(), 1u);
  }
}

}  // namespace
}  // namespace cobra::core
