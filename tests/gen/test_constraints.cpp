/// Tests for k-SAT constraint systems (gen/constraints.*): clause shape and
/// evaluation, random_ksat determinism and distinct-variable contract, and
/// the clause dependency graph's shared-variable adjacency.

#include "gen/constraints.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace cobra::gen {
namespace {

/// (x0 or x1) and (!x1 or x2) and (!x3): the worked example used below.
ClauseSystem tiny_system() {
  ClauseSystem sys;
  sys.num_vars = 4;
  sys.offsets = {0, 2, 4, 5};
  sys.vars = {0, 1, 1, 2, 3};
  sys.negated = {0, 0, 1, 0, 1};
  return sys;
}

TEST(ClauseSystem, EvaluationMatchesHandComputation) {
  const ClauseSystem sys = tiny_system();
  ASSERT_EQ(sys.num_clauses(), 3u);
  EXPECT_EQ(sys.clause_vars(1).size(), 2u);
  EXPECT_EQ(sys.clause_vars(2).size(), 1u);

  // x = (0, 0, 0, 1): clause 0 violated, clause 1 satisfied (!x1), clause
  // 2 violated (x3 true but the literal wants false).
  const std::vector<std::uint8_t> a = {0, 0, 0, 1};
  EXPECT_FALSE(sys.satisfied(0, a));
  EXPECT_TRUE(sys.satisfied(1, a));
  EXPECT_FALSE(sys.satisfied(2, a));
  EXPECT_EQ(sys.count_violated(a), 2u);

  // x = (1, 0, 0, 0) satisfies everything.
  const std::vector<std::uint8_t> b = {1, 0, 0, 0};
  EXPECT_EQ(sys.count_violated(b), 0u);
}

TEST(RandomKsat, ShapeContractHolds) {
  const auto sys = random_ksat(/*num_vars=*/50, /*num_clauses=*/120, /*k=*/3,
                               /*seed=*/7);
  EXPECT_EQ(sys.num_vars, 50u);
  ASSERT_EQ(sys.num_clauses(), 120u);
  EXPECT_EQ(sys.vars.size(), 360u);
  EXPECT_EQ(sys.negated.size(), 360u);
  for (std::uint32_t c = 0; c < sys.num_clauses(); ++c) {
    const auto xs = sys.clause_vars(c);
    ASSERT_EQ(xs.size(), 3u);
    EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
    EXPECT_TRUE(std::adjacent_find(xs.begin(), xs.end()) == xs.end())
        << "clause " << c << " repeats a variable";
    for (const auto x : xs) EXPECT_LT(x, 50u);
    for (const auto s : sys.clause_signs(c)) EXPECT_LE(s, 1u);
  }
}

TEST(RandomKsat, DeterministicPerSeedAndVariedAcrossSeeds) {
  const auto a = random_ksat(40, 60, 3, 11);
  const auto b = random_ksat(40, 60, 3, 11);
  EXPECT_EQ(a.vars, b.vars);
  EXPECT_EQ(a.negated, b.negated);
  const auto c = random_ksat(40, 60, 3, 12);
  EXPECT_TRUE(a.vars != c.vars || a.negated != c.negated);
}

TEST(RandomKsat, PolaritiesAreRoughlyBalanced) {
  const auto sys = random_ksat(100, 2000, 3, 99);
  const auto negs = static_cast<double>(
      std::count(sys.negated.begin(), sys.negated.end(), 1));
  EXPECT_NEAR(negs / static_cast<double>(sys.negated.size()), 0.5, 0.03);
}

TEST(RandomKsat, RejectsDegenerateParameters) {
  EXPECT_THROW(random_ksat(0, 5, 1, 1), std::invalid_argument);
  EXPECT_THROW(random_ksat(10, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(random_ksat(10, 5, 11, 1), std::invalid_argument);
  // k == num_vars is legal: every clause spans all variables.
  const auto sys = random_ksat(3, 4, 3, 1);
  EXPECT_EQ(sys.clause_vars(0).size(), 3u);
}

TEST(DependencyGraph, EdgesAreExactlySharedVariablePairs) {
  const graph::Graph deps = dependency_graph(tiny_system());
  ASSERT_EQ(deps.num_vertices(), 3u);
  // Clauses 0 and 1 share x1; clause 2 (x3 alone) is isolated.
  EXPECT_TRUE(deps.has_edge(0, 1));
  EXPECT_EQ(deps.degree(0), 1u);
  EXPECT_EQ(deps.degree(1), 1u);
  EXPECT_EQ(deps.degree(2), 0u);
}

TEST(DependencyGraph, DuplicateSharedVariablesCollapseToOneEdge) {
  // Two clauses sharing TWO variables still get exactly one edge.
  ClauseSystem sys;
  sys.num_vars = 3;
  sys.offsets = {0, 2, 4};
  sys.vars = {0, 1, 0, 1};
  sys.negated = {0, 0, 1, 1};
  const graph::Graph deps = dependency_graph(sys);
  ASSERT_EQ(deps.num_vertices(), 2u);
  EXPECT_TRUE(deps.has_edge(0, 1));
  EXPECT_EQ(deps.degree(0), 1u);
  EXPECT_EQ(deps.num_edges(), 1u);
}

TEST(DependencyGraph, MatchesBruteForceOnARandomSystem) {
  const auto sys = random_ksat(30, 80, 3, 5);
  const graph::Graph deps = dependency_graph(sys);
  ASSERT_EQ(deps.num_vertices(), 80u);
  for (std::uint32_t a = 0; a < sys.num_clauses(); ++a) {
    for (std::uint32_t b = a + 1; b < sys.num_clauses(); ++b) {
      const auto va = sys.clause_vars(a);
      const auto vb = sys.clause_vars(b);
      const bool shares =
          std::find_first_of(va.begin(), va.end(), vb.begin(), vb.end()) !=
          va.end();
      EXPECT_EQ(deps.has_edge(a, b), shares) << "clauses " << a << "," << b;
    }
  }
}

}  // namespace
}  // namespace cobra::gen
