/// The determinism contract of src/gen: every chunk-parallel generator is a
/// pure function of (spec, seed) — bit-identical CSR across thread counts
/// 1/2/8 AND identical to the forced-serial in-line path — plus structural
/// invariants per family. Statistical distribution checks live in
/// tests/integration/test_generator_statistics.cpp.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/families.hpp"
#include "gen/registry.hpp"
#include "graph/algorithms.hpp"
#include "parallel/thread_pool.hpp"

namespace cobra::gen {
namespace {

using graph::Graph;

/// Build `spec` serially and on pools of 1, 2, and 8 threads; assert all
/// four CSR images are bit-identical, and return one of them.
Graph assert_thread_invariant(const std::string& spec) {
  GenOptions serial;
  serial.serial = true;
  const Graph reference = build_graph(spec, serial);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    GenOptions opts;
    opts.pool = &pool;
    const Graph g = build_graph(spec, opts);
    EXPECT_EQ(g.offsets(), reference.offsets())
        << spec << " with " << threads << " threads";
    EXPECT_EQ(g.targets(), reference.targets())
        << spec << " with " << threads << " threads";
  }
  return reference;
}

TEST(ParallelGen, GnpThreadInvariantAndSimple) {
  // 120k vertices at avg_deg 8 spans multiple chunks (~480k edges).
  const Graph g = assert_thread_invariant("gnp:n=120000,avg_deg=8,seed=42");
  EXPECT_EQ(g.num_vertices(), 120000u);
  EXPECT_TRUE(g.is_simple());
  EXPECT_NEAR(g.average_degree(), 8.0, 0.2);
}

TEST(ParallelGen, GnpSeedChangesGraph) {
  GenOptions serial;
  serial.serial = true;
  const Graph a = build_graph("gnp:n=2000,avg_deg=6,seed=1", serial);
  const Graph b = build_graph("gnp:n=2000,avg_deg=6,seed=2", serial);
  EXPECT_NE(a.targets(), b.targets());
}

TEST(ParallelGen, GnpEdgeCases) {
  GenOptions serial;
  serial.serial = true;
  EXPECT_EQ(gnp(100, 0.0, 1, serial).num_edges(), 0u);
  EXPECT_EQ(gnp(50, 1.0, 1, serial).num_edges(), 50u * 49u / 2);
  EXPECT_EQ(gnp(0, 0.5, 1, serial).num_vertices(), 0u);
  EXPECT_EQ(gnp(1, 0.5, 1, serial).num_edges(), 0u);
}

TEST(ParallelGen, GnmThreadInvariantExactEdgesAndSimple) {
  // 3 chunks of slots at this size; the Feistel permutation guarantees the
  // edge count is EXACT, not concentrated.
  const Graph g = assert_thread_invariant("gnm:n=100000,m=200000,seed=17");
  EXPECT_EQ(g.num_vertices(), 100000u);
  EXPECT_EQ(g.num_edges(), 200000u);
  EXPECT_TRUE(g.is_simple());
}

TEST(ParallelGen, GnmSeedChangesGraphButNeverTheEdgeCount) {
  GenOptions serial;
  serial.serial = true;
  const Graph a = build_graph("gnm:n=3000,m=9000,seed=1", serial);
  const Graph b = build_graph("gnm:n=3000,m=9000,seed=2", serial);
  EXPECT_NE(a.targets(), b.targets());
  EXPECT_EQ(a.num_edges(), 9000u);
  EXPECT_EQ(b.num_edges(), 9000u);
}

TEST(ParallelGen, GnmEdgeCasesAndSpecKeys) {
  GenOptions serial;
  serial.serial = true;
  EXPECT_EQ(gnm(100, 0, 1, serial).num_edges(), 0u);
  // m = C(n,2) is the complete graph — the permutation covers every pair.
  const Graph complete = gnm(60, 60 * 59 / 2, 1, serial);
  EXPECT_EQ(complete.num_edges(), 60u * 59 / 2);
  EXPECT_TRUE(complete.is_regular());
  EXPECT_EQ(complete.degree(0), 59u);
  EXPECT_THROW((void)gnm(10, 46, 1, serial), std::invalid_argument);  // > C(10,2)
  // avg_deg sugar: m = round(n * avg_deg / 2).
  EXPECT_EQ(build_graph("gnm:n=1000,avg_deg=8,seed=3", serial).num_edges(),
            4000u);
  EXPECT_THROW((void)build_graph("gnm:n=100,m=10,avg_deg=2", serial),
               std::invalid_argument);  // exactly one of m / avg_deg
  EXPECT_THROW((void)build_graph("gnm:n=100", serial), std::invalid_argument);
}

TEST(ParallelGen, RmatThreadInvariantAndHeavyTailed) {
  const Graph g = assert_thread_invariant("rmat:n=2^14,deg=16,seed=7");
  EXPECT_EQ(g.num_vertices(), 1u << 14);
  EXPECT_TRUE(g.is_simple());
  // Skew parameters concentrate edges on low ids: the max degree must be
  // far above the mean (heavy tail), a structural R-MAT signature.
  EXPECT_GT(g.max_degree(), 8 * g.average_degree());
}

TEST(ParallelGen, RmatRoundsUpToPowerOfTwo) {
  GenOptions serial;
  serial.serial = true;
  EXPECT_EQ(build_graph("rmat:n=1000,deg=4,seed=1", serial).num_vertices(),
            1024u);
}

TEST(ParallelGen, WattsStrogatzThreadInvariantAndNearRegular) {
  const Graph g = assert_thread_invariant("ws:n=50000,k=6,beta=0.1,seed=5");
  EXPECT_EQ(g.num_vertices(), 50000u);
  EXPECT_TRUE(g.is_simple());
  // Rewiring preserves edge count up to duplicate collisions (rare).
  EXPECT_NEAR(g.average_degree(), 6.0, 0.05);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(ParallelGen, WattsStrogatzBetaZeroIsLattice) {
  GenOptions serial;
  serial.serial = true;
  const Graph g = build_graph("ws:n=100,k=4,beta=0,seed=1", serial);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_TRUE(g.has_edge(v, (v + 1) % 100));
    EXPECT_TRUE(g.has_edge(v, (v + 2) % 100));
  }
}

TEST(ParallelGen, BarabasiAlbertThreadInvariant) {
  const Graph g = assert_thread_invariant("ba:n=60000,d=3,seed=11");
  EXPECT_EQ(g.num_vertices(), 60000u);
  EXPECT_TRUE(g.is_simple());
  // Copy-model drops self-loops, so mean degree is slightly under 2d.
  EXPECT_GT(g.average_degree(), 4.5);
  EXPECT_LE(g.average_degree(), 6.0);
}

TEST(ParallelGen, RandomRegularThreadInvariantRegularSimple) {
  const Graph g = assert_thread_invariant("rreg:n=20000,d=4,seed=9");
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_TRUE(g.is_simple());
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(ParallelGen, GeometricThreadInvariant) {
  const Graph g = assert_thread_invariant("geo:n=80000,radius=0.008,seed=13");
  EXPECT_EQ(g.num_vertices(), 80000u);
  EXPECT_TRUE(g.is_simple());
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(ParallelGen, GeneratingInsidePoolWorkerFallsBackServially) {
  // A generator invoked from a pool worker (e.g. inside a Monte-Carlo
  // trial) must not deadlock in wait_idle; it detects the worker thread
  // and runs in-line, producing the identical graph.
  GenOptions serial;
  serial.serial = true;
  const Graph reference = build_graph("gnp:n=30000,avg_deg=6,seed=4", serial);
  par::ThreadPool pool(4);
  Graph from_worker;
  pool.submit([&] {
    GenOptions opts;
    opts.pool = &pool;
    from_worker = build_graph("gnp:n=30000,avg_deg=6,seed=4", opts);
  });
  pool.wait_idle();
  EXPECT_EQ(from_worker.offsets(), reference.offsets());
  EXPECT_EQ(from_worker.targets(), reference.targets());
}

TEST(ParallelGen, InvalidParametersThrow) {
  GenOptions serial;
  serial.serial = true;
  EXPECT_THROW((void)gnp(10, -0.5, 1, serial), std::invalid_argument);
  EXPECT_THROW((void)rmat(0, 10, .5, .2, .2, 1, serial),
               std::invalid_argument);
  EXPECT_THROW((void)rmat(4, 10, .6, .3, .3, 1, serial),
               std::invalid_argument);
  EXPECT_THROW((void)watts_strogatz(10, 3, 0.1, 1, serial),
               std::invalid_argument);  // odd k
  EXPECT_THROW((void)watts_strogatz(10, 10, 0.1, 1, serial),
               std::invalid_argument);  // k >= n
  EXPECT_THROW((void)watts_strogatz(10, 4, 1.5, 1, serial),
               std::invalid_argument);
  EXPECT_THROW((void)barabasi_albert(10, 0, 1, serial),
               std::invalid_argument);
  EXPECT_THROW((void)random_regular(9, 3, 1, serial),
               std::invalid_argument);  // n*d odd
  EXPECT_THROW((void)random_regular(4, 4, 1, serial),
               std::invalid_argument);  // d >= n
  EXPECT_THROW((void)random_geometric(10, 0.0, 1, serial),
               std::invalid_argument);
}

}  // namespace
}  // namespace cobra::gen
