#include "gen/spec.hpp"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <string>

#include "gen/registry.hpp"
#include "graph/generators.hpp"
#include "util/fault.hpp"

namespace cobra::gen {
namespace {

TEST(GraphSpec, ParsesFamilyOnly) {
  const GraphSpec spec = GraphSpec::parse("hypercube");
  EXPECT_EQ(spec.family(), "hypercube");
  EXPECT_TRUE(spec.params().empty());
}

TEST(GraphSpec, ParsesKeyValuePairsInOrder) {
  const GraphSpec spec = GraphSpec::parse("rmat:n=2^20,deg=16,seed=7");
  EXPECT_EQ(spec.family(), "rmat");
  ASSERT_EQ(spec.params().size(), 3u);
  EXPECT_EQ(spec.params()[0].first, "n");
  EXPECT_EQ(spec.params()[1].first, "deg");
  EXPECT_EQ(spec.params()[2].first, "seed");
  EXPECT_EQ(spec.require_uint("n"), 1ull << 20);
  EXPECT_EQ(spec.require_uint("deg"), 16u);
  EXPECT_EQ(spec.require_uint("seed"), 7u);
}

TEST(GraphSpec, RoundTripsThroughToString) {
  for (const char* text :
       {"gnp:n=1e6,avg_deg=8", "gnm:n=2^16,m=2^18,seed=5",
        "ws:n=4096,k=6,beta=0.1", "ring:n=100",
        "rmat:n=2^20,deg=16,seed=7", "hypercube"}) {
    const GraphSpec spec = GraphSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(GraphSpec::parse(spec.to_string()).to_string(), text);
  }
}

TEST(GraphSpec, NumberGrammar) {
  const GraphSpec spec =
      GraphSpec::parse("gnp:n=1e6,p=0.5,big=2^33,plain=123");
  EXPECT_EQ(spec.require_uint("n"), 1000000u);
  EXPECT_EQ(spec.require_uint("big"), 1ull << 33);
  EXPECT_EQ(spec.require_uint("plain"), 123u);
  EXPECT_DOUBLE_EQ(spec.require_double("p"), 0.5);
  EXPECT_DOUBLE_EQ(spec.require_double("big"),
                   static_cast<double>(1ull << 33));
}

TEST(GraphSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)GraphSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse(":n=4"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("gnp:"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("gnp:n"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("gnp:n="), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("gnp:=4"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("gnp:n=4,n=5"), std::invalid_argument);
  EXPECT_THROW((void)GraphSpec::parse("bad family:n=4"),
               std::invalid_argument);
}

TEST(GraphSpec, RejectsMalformedNumbers) {
  const GraphSpec spec = GraphSpec::parse(
      "x:a=3^20,b=2^99,c=12junk,d=1.5,e=nan,f=-3");
  EXPECT_THROW((void)spec.require_uint("a"), std::invalid_argument);
  EXPECT_THROW((void)spec.require_uint("b"), std::invalid_argument);
  EXPECT_THROW((void)spec.require_uint("c"), std::invalid_argument);
  EXPECT_THROW((void)spec.require_uint("d"), std::invalid_argument);  // not integral
  EXPECT_THROW((void)spec.require_double("e"), std::invalid_argument);
  EXPECT_THROW((void)spec.require_uint("f"), std::invalid_argument);
  EXPECT_THROW((void)spec.require_uint("missing"), std::invalid_argument);
}

TEST(GraphSpec, GettersFallBack) {
  const GraphSpec spec = GraphSpec::parse("x:flag=true,num=3");
  EXPECT_EQ(spec.get_uint("absent", 9), 9u);
  EXPECT_DOUBLE_EQ(spec.get_double("absent", 0.25), 0.25);
  EXPECT_TRUE(spec.get_bool("flag", false));
  EXPECT_FALSE(spec.get_bool("absent", false));
  EXPECT_THROW((void)spec.get_bool("num", false), std::invalid_argument);
  EXPECT_FALSE(spec.has("absent"));
  EXPECT_TRUE(spec.has("flag"));
}

TEST(Registry, RejectsUnknownFamilyAndKeys) {
  EXPECT_THROW((void)build_graph("nope:n=10"), std::invalid_argument);
  EXPECT_THROW((void)build_graph("ring:n=10,typo=1"), std::invalid_argument);
  EXPECT_THROW((void)build_graph("gnp:n=100"), std::invalid_argument);
  EXPECT_THROW((void)build_graph("gnp:n=100,p=0.1,avg_deg=4"),
               std::invalid_argument);
}

TEST(Registry, DeterministicFamiliesMatchDirectConstruction) {
  const auto same = [](const graph::Graph& a, const graph::Graph& b) {
    return a.offsets() == b.offsets() && a.targets() == b.targets();
  };
  EXPECT_TRUE(same(build_graph("ring:n=10"), graph::make_cycle(10)));
  EXPECT_TRUE(same(build_graph("path:n=7"), graph::make_path(7)));
  EXPECT_TRUE(same(build_graph("grid:side=5,dims=2"), graph::make_grid(2, 5)));
  EXPECT_TRUE(
      same(build_graph("torus:side=5"), graph::make_grid(2, 5, true)));
  EXPECT_TRUE(same(build_graph("hypercube:dims=4"), graph::make_hypercube(4)));
  EXPECT_TRUE(same(build_graph("tree:levels=3,arity=3"),
                   graph::make_kary_tree(3, 3)));
  EXPECT_TRUE(same(build_graph("lollipop:clique=6,path=4"),
                   graph::make_lollipop(6, 4)));
  EXPECT_TRUE(same(build_graph("dclique:clique=5"),
                   graph::make_double_clique(5)));
}

TEST(Registry, GridSugarDerivesSideFromN) {
  const graph::Graph g = build_graph("grid:n=1024");
  EXPECT_EQ(g.num_vertices(), 32u * 32u);
  const graph::Graph g3 = build_graph("grid:n=1000,dims=3");
  EXPECT_EQ(g3.num_vertices(), 1000u);
}

TEST(Registry, LccExtractsLargestComponent) {
  // Sub-critical G(n, p) is disconnected w.h.p.; lcc must leave one
  // component with no isolated vertices.
  const graph::Graph g = build_graph("gnp:n=300,avg_deg=1.5,seed=3,lcc=1");
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.min_degree(), 0u);
  EXPECT_LT(g.num_vertices(), 300u);
}

TEST(Registry, AllocFaultSurfacesAsBadAlloc) {
  // gen.alloc (HARD): the CSR allocation fails exactly where a real OOM
  // would. build_graph must throw std::bad_alloc, never hand back a
  // torso graph — and disarmed, the same spec builds fine again.
  util::fault::disarm_all();
  util::fault::arm("gen.alloc");
  EXPECT_THROW((void)build_graph("ring:n=64"), std::bad_alloc);
  util::fault::disarm_all();
  EXPECT_EQ(build_graph("ring:n=64").num_vertices(), 64u);
}

TEST(Registry, BuildFaultUnwindsMidPipelineNamingTheSite) {
  // gen.build_graph (HARD): the build dies after the family factory. The
  // error must name the injected site so a chaos log reads as a fault,
  // not as a generator bug.
  util::fault::disarm_all();
  util::fault::arm("gen.build_graph");
  try {
    (void)build_graph("rreg:n=64,d=4,seed=1");
    FAIL() << "armed gen.build_graph did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("gen.build_graph"),
              std::string::npos);
  }
  util::fault::disarm_all();
}

TEST(Registry, FamiliesAreSortedAndDocumented) {
  const auto& fams = families();
  ASSERT_GE(fams.size(), 15u);
  for (std::size_t i = 1; i < fams.size(); ++i) {
    EXPECT_LT(fams[i - 1].name, fams[i].name);
  }
  for (const auto& info : fams) {
    EXPECT_FALSE(info.synopsis.empty()) << info.name;
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_NE(grammar_help().find(info.synopsis), std::string::npos)
        << info.name;
  }
  EXPECT_NE(find_family("gnp"), nullptr);
  EXPECT_EQ(find_family("nope"), nullptr);
}

}  // namespace
}  // namespace cobra::gen
