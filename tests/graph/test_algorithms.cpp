#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace cobra::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = make_path(6);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
  const auto dist2 = bfs_distances(g, 3);
  EXPECT_EQ(dist2[0], 3u);
  EXPECT_EQ(dist2[5], 2u);
}

TEST(Bfs, DistancesOnHypercube) {
  const Graph g = make_hypercube(5);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dist[v], static_cast<std::uint32_t>(__builtin_popcount(v)));
  }
}

TEST(Bfs, UnreachableMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g = make_path(3);
  EXPECT_THROW(bfs_distances(g, 3), std::out_of_range);
}

TEST(Bfs, ParentsFormTree) {
  const Graph g = make_grid(2, 5);
  const auto parents = bfs_parents(g, 0);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(parents[0], 0u);
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    ASSERT_NE(parents[v], kUnreachable);
    EXPECT_TRUE(g.has_edge(v, parents[v]));
    EXPECT_EQ(dist[parents[v]] + 1, dist[v]);
  }
}

TEST(ShortestPath, OnCycle) {
  const Graph g = make_cycle(8);
  const auto path = shortest_path(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(ShortestPath, SelfIsSingleton) {
  const Graph g = make_path(3);
  const auto path = shortest_path(g, 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

TEST(ShortestPath, UnreachableIsEmpty) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(Connectivity, Basics) {
  EXPECT_TRUE(is_connected(make_cycle(5)));
  EXPECT_TRUE(is_connected(Graph{}));
  GraphBuilder b(2);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(Components, TwoIslands) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();  // {0,1,2}, {3,4}, {5}
  const auto comp = connected_components(g);
  EXPECT_EQ(num_components(g), 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(LargestComponent, ExtractsAndRemaps) {
  GraphBuilder b(7);
  b.add_edge(0, 1);  // small comp
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 2);  // big comp: cycle {2,3,4,5}; vertex 6 isolated
  const Graph g = b.build();
  const auto ext = largest_component(g);
  EXPECT_EQ(ext.graph.num_vertices(), 4u);
  EXPECT_EQ(ext.graph.num_edges(), 4u);
  EXPECT_TRUE(is_connected(ext.graph));
  EXPECT_EQ(ext.new_to_old.size(), 4u);
  EXPECT_EQ(ext.old_to_new[0], kUnreachable);
  EXPECT_EQ(ext.old_to_new[6], kUnreachable);
  // Round trip mapping.
  for (Vertex nv = 0; nv < 4; ++nv) {
    EXPECT_EQ(ext.old_to_new[ext.new_to_old[nv]], nv);
  }
}

TEST(LargestComponent, WholeGraphWhenConnected) {
  const Graph g = make_grid(2, 3);
  const auto ext = largest_component(g);
  EXPECT_EQ(ext.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(ext.graph.num_edges(), g.num_edges());
}

TEST(Eccentricity, PathEndpoints) {
  const Graph g = make_path(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(exact_diameter(make_path(10)), 9u);
  EXPECT_EQ(exact_diameter(make_cycle(10)), 5u);
  EXPECT_EQ(exact_diameter(make_complete(5)), 1u);
  EXPECT_EQ(exact_diameter(make_star(20)), 2u);
  EXPECT_EQ(exact_diameter(make_hypercube(6)), 6u);
}

TEST(Diameter, DisconnectedIsUnreachable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(exact_diameter(b.build()), kUnreachable);
}

TEST(DoubleSweep, ExactOnTreesAndPaths) {
  EXPECT_EQ(double_sweep_diameter_lb(make_path(12)), 11u);
  EXPECT_EQ(double_sweep_diameter_lb(make_kary_tree(2, 5)), 8u);
  EXPECT_EQ(double_sweep_diameter_lb(make_star(9)), 2u);
}

TEST(DoubleSweep, IsLowerBound) {
  const Graph g = make_grid(2, 6);
  EXPECT_LE(double_sweep_diameter_lb(g), exact_diameter(g));
  EXPECT_GE(double_sweep_diameter_lb(g), exact_diameter(g) / 2);
}

TEST(PathDegreeSum, LemmaNineteenBound) {
  // Sum of degrees along any shortest path is at most 3n (Lemma 19 cites
  // this classical fact); verify on several families.
  for (const Graph& g : {make_grid(2, 8), make_lollipop(12, 12),
                         make_kary_tree(3, 4), make_cycle(30)}) {
    const std::uint32_t n = g.num_vertices();
    for (const Vertex target : {static_cast<Vertex>(n - 1)}) {
      const auto path = shortest_path(g, 0, target);
      ASSERT_FALSE(path.empty());
      EXPECT_LE(path_degree_sum(g, path), 3ull * n);
    }
  }
}

}  // namespace
}  // namespace cobra::graph
