#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace cobra::graph {
namespace {

TEST(Builder, OutOfRangeEndpointThrows) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(3, 0), std::invalid_argument);
}

TEST(Builder, ArcSymmetry) {
  GraphBuilder b(5);
  b.add_edge(0, 4);
  b.add_edge(1, 3);
  b.add_edge(0, 2);
  const Graph g = b.build();
  // Every arc u->v must have a partner v->u.
  std::map<std::pair<Vertex, Vertex>, int> arcs;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex u : g.neighbors(v)) ++arcs[{v, u}];
  }
  for (const auto& [arc, count] : arcs) {
    const auto partner = arcs.find({arc.second, arc.first});
    ASSERT_NE(partner, arcs.end());
    EXPECT_EQ(partner->second, count);
  }
}

TEST(Builder, SimplifyRemovesLoopsAndDuplicates) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate (reversed)
  b.add_edge(2, 2);  // loop
  b.add_edge(2, 3);
  b.add_edge(2, 3);  // duplicate
  EXPECT_EQ(b.num_edges(), 5u);
  EXPECT_EQ(b.simplify(), 3u);
  EXPECT_EQ(b.num_edges(), 2u);
  const Graph g = b.build();
  EXPECT_TRUE(g.is_simple());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(Builder, SimplifyOnCleanGraphIsNoop) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  EXPECT_EQ(b.simplify(), 0u);
  EXPECT_EQ(b.num_edges(), 2u);
}

TEST(Builder, BuildIsRepeatable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(g1.targets(), g2.targets());
  // Builder stays usable after build.
  b.add_edge(1, 2);
  EXPECT_EQ(b.build().num_edges(), 2u);
}

TEST(Builder, SelfLoopBecomesTwoArcs) {
  GraphBuilder b(1);
  b.add_edge(0, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.volume(), 2u);
}

TEST(Builder, EmptyBuild) {
  GraphBuilder b(4);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Builder, EdgesAccessor) {
  GraphBuilder b(3);
  b.add_edge(2, 1);
  ASSERT_EQ(b.edges().size(), 1u);
  EXPECT_EQ(b.edges()[0], (std::pair<Vertex, Vertex>{2, 1}));
}

TEST(Builder, AdjacencyListsSorted) {
  GraphBuilder b(5);
  b.add_edge(0, 4);
  b.add_edge(0, 1);
  b.add_edge(0, 3);
  b.add_edge(0, 2);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(0);
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i], nbrs[i + 1]);
  }
}

}  // namespace
}  // namespace cobra::graph
