#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cobra::graph {
namespace {

Digraph two_cycle() {
  // 0 -> 1 -> 0 with equal weights: stationary is uniform.
  return Digraph(2, {{0, 1, 1.0}, {1, 0, 1.0}});
}

TEST(Digraph, CsrLayout) {
  const Digraph d(3, {{0, 1, 2.0}, {0, 2, 1.0}, {2, 0, 3.0}});
  EXPECT_EQ(d.num_vertices(), 3u);
  EXPECT_EQ(d.num_arcs(), 3u);
  EXPECT_EQ(d.out_degree(0), 2u);
  EXPECT_EQ(d.out_degree(1), 0u);
  EXPECT_EQ(d.out_degree(2), 1u);
  EXPECT_DOUBLE_EQ(d.out_weight_total(0), 3.0);
  EXPECT_DOUBLE_EQ(d.out_weight_total(2), 3.0);
}

TEST(Digraph, RejectsBadArcs) {
  EXPECT_THROW(Digraph(2, {{0, 5, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Digraph(2, {{5, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Digraph(2, {{0, 1, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Digraph(2, {{0, 1, -2.0}}), std::invalid_argument);
}

TEST(Digraph, InWeightTotals) {
  const Digraph d(3, {{0, 1, 2.0}, {2, 1, 3.0}, {1, 0, 5.0}});
  const auto in = d.in_weight_totals();
  EXPECT_DOUBLE_EQ(in[0], 5.0);
  EXPECT_DOUBLE_EQ(in[1], 5.0);
  EXPECT_DOUBLE_EQ(in[2], 0.0);
}

TEST(Digraph, WeightBalance) {
  EXPECT_TRUE(two_cycle().is_weight_balanced());
  const Digraph unbalanced(2, {{0, 1, 2.0}, {1, 0, 1.0}});
  EXPECT_FALSE(unbalanced.is_weight_balanced());
  // Balanced 3-cycle with equal weights.
  const Digraph cyc(3, {{0, 1, 2.0}, {1, 2, 2.0}, {2, 0, 2.0}});
  EXPECT_TRUE(cyc.is_weight_balanced());
}

TEST(Digraph, TransitionProbabilitiesRowStochastic) {
  const Digraph d(3, {{0, 1, 2.0}, {0, 2, 2.0}, {1, 0, 7.0}, {2, 0, 1.0}});
  const auto probs = d.transition_probabilities();
  // Row of vertex 0: two arcs of 0.5 each.
  const auto w0 = d.out_weights(0);
  (void)w0;
  double row0 = 0.0;
  for (std::uint32_t i = 0; i < d.out_degree(0); ++i) row0 += probs[i];
  EXPECT_NEAR(row0, 1.0, 1e-12);
}

TEST(Digraph, PushDistributionConservesMass) {
  const Digraph d(3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  std::vector<double> in{0.5, 0.3, 0.2}, out(3);
  d.push_distribution(in, out);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 0.3);
  EXPECT_DOUBLE_EQ(out[0], 0.2);
}

TEST(Digraph, StationaryOfSymmetricCycleIsUniform) {
  // Directed 4-cycle is periodic; add laziness via self-loops to converge.
  const Digraph d(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0},
                      {0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {3, 3, 1.0}});
  const auto pi = d.stationary_distribution();
  for (const double p : pi) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(Digraph, StationaryOfEulerianIsOutWeightProportional) {
  // Weight-balanced digraph: pi(v) = out_weight(v) / total. Build one with
  // unequal out weights: 0 <-> 1 with weight 3 each way plus a 3-cycle of
  // weight 1 through all vertices; add self loops for aperiodicity.
  std::vector<Digraph::Arc> arcs = {
      {0, 1, 3.0}, {1, 0, 3.0},
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0},
      {0, 0, 2.0}, {1, 1, 2.0}, {2, 2, 2.0}};
  const Digraph d(3, arcs);
  ASSERT_TRUE(d.is_weight_balanced());
  const auto pi = d.stationary_distribution();
  const double total = d.out_weight_total(0) + d.out_weight_total(1) +
                       d.out_weight_total(2);
  for (Vertex v = 0; v < 3; ++v) {
    EXPECT_NEAR(pi[v], d.out_weight_total(v) / total, 1e-9) << "v=" << v;
  }
}

TEST(TotalVariation, Basics) {
  const std::vector<double> a{0.5, 0.5}, b{1.0, 0.0};
  EXPECT_DOUBLE_EQ(total_variation(a, b), 0.5);
  EXPECT_DOUBLE_EQ(total_variation(a, a), 0.0);
  const std::vector<double> c{0.2};
  EXPECT_THROW((void)total_variation(a, c), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::graph
