#include "graph/directed_cheeger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/spectral.hpp"
#include "graph/tensor_product.hpp"

namespace cobra::graph {
namespace {

/// Lazy symmetric digraph from an undirected graph: arcs both ways with
/// weight 1 plus a self-loop of weight equal to the degree (1/2 laziness).
Digraph lazy_digraph_of(const Graph& g) {
  std::vector<Digraph::Arc> arcs;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex u : g.neighbors(v)) arcs.push_back({v, u, 1.0});
    arcs.push_back({v, v, static_cast<double>(g.degree(v))});
  }
  return Digraph(g.num_vertices(), arcs);
}

std::vector<double> degree_stationary(const Graph& g) {
  std::vector<double> pi(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    pi[v] = static_cast<double>(g.degree(v)) / static_cast<double>(g.volume());
  }
  return pi;
}

TEST(CirculationInflow, StationaryFlowEqualsPi) {
  // For the true stationary distribution, in-flow(v) = pi(v).
  const Graph g = make_cycle(8);
  const Digraph d = lazy_digraph_of(g);
  const auto pi = degree_stationary(g);
  const auto inflow = circulation_inflow(d, pi);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(inflow[v], pi[v], 1e-12);
  }
}

TEST(DirectedCheeger, MatchesUndirectedConductanceOnSymmetricChains) {
  // For the lazy symmetric chain of an undirected graph, the directed
  // Cheeger constant equals half the undirected conductance (laziness
  // halves every boundary flow but also... the F(S) side keeps pi mass, so
  // h = Phi/2 exactly).
  for (const Graph& g : {make_cycle(8), make_complete(5), make_barbell(4, 0)}) {
    const Digraph d = lazy_digraph_of(g);
    const auto pi = degree_stationary(g);
    const double h = directed_cheeger_small(d, pi);
    const double phi = exact_conductance_small(g);
    EXPECT_NEAR(h, phi / 2.0, 1e-9)
        << "n=" << g.num_vertices() << " m=" << g.num_edges();
  }
}

TEST(DirectedCheeger, ChungSandwichOnSymmetricChains) {
  for (const Graph& g : {make_cycle(8), make_complete(5), make_barbell(4, 0),
                         make_star(6)}) {
    const Digraph d = lazy_digraph_of(g);
    const auto pi = degree_stationary(g);
    const auto report = directed_cheeger_report(d, pi);
    EXPECT_TRUE(report.sandwich_holds)
        << "h=" << report.cheeger << " lambda=" << report.lambda2;
    EXPECT_GT(report.lambda2, 0.0);
  }
}

TEST(DirectedCheeger, LambdaMatchesLazySpectralGapOnSymmetricChains) {
  // For reversible chains Chung's Laplacian reduces to the symmetric
  // normalized Laplacian: lambda2 == lazy spectral gap of the walk.
  const Graph g = make_cycle(10);
  const Digraph d = lazy_digraph_of(g);
  const auto pi = degree_stationary(g);
  const double lambda = directed_laplacian_lambda2(d, pi);
  EXPECT_NEAR(lambda, cycle_lazy_gap(10), 1e-9);
}

TEST(DirectedCheeger, GenuinelyDirectedChain) {
  // 4-cycle with a shortcut, made lazy: irreversible but Eulerian-ish via
  // uniform stationary on a directed cycle with self-loops.
  std::vector<Digraph::Arc> arcs = {
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0},
      {0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {3, 3, 1.0}};
  const Digraph d(4, arcs);
  const auto pi = d.stationary_distribution();
  const auto report = directed_cheeger_report(d, pi);
  EXPECT_TRUE(report.sandwich_holds);
  // Directed cycle cut {0,1}: boundary flow = pi(1)P(1,2) = 1/8; F(S)=1/2.
  EXPECT_NEAR(report.cheeger, 0.25, 1e-9);
}

TEST(DirectedCheeger, WaltPairChainSandwich) {
  // The actual object from the paper: D(G x G) for a small regular G. Use
  // the closed-form stationary distribution; the Chung sandwich must hold
  // and h must be bounded below by ~Phi/(4 d^2) per the paper's estimate.
  const Graph g = make_complete(4);  // n=4 -> 16 product states (<= 24)
  const Digraph d = walt_pair_digraph(g);
  const auto closed = walt_pair_stationary(4);
  std::vector<double> pi(d.num_vertices());
  for (Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    pi[pv] = is_diagonal(pv, 4) ? closed.diagonal : closed.off_diagonal;
  }
  // Laziness: the paper's chain freezes w.p. 1/2; emulate by augmenting
  // self-loops with weight equal to each vertex's out-weight.
  std::vector<Digraph::Arc> arcs;
  for (Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    const auto targets = d.out_neighbors(pv);
    const auto weights = d.out_weights(pv);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      arcs.push_back({pv, targets[i], weights[i]});
    }
    arcs.push_back({pv, pv, d.out_weight_total(pv)});
  }
  const Digraph lazy(d.num_vertices(), arcs);

  const auto report = directed_cheeger_report(lazy, pi);
  EXPECT_TRUE(report.sandwich_holds)
      << "h=" << report.cheeger << " lambda=" << report.lambda2;
  const double phi = exact_conductance_small(g);
  const double deg = g.degree(0);
  EXPECT_GE(report.cheeger, phi / (4.0 * deg * deg) - 1e-9);
}

TEST(DirectedCheeger, InputValidation) {
  const Digraph d(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW((void)directed_cheeger_small(d, {0.5}), std::invalid_argument);
  const Digraph big(
      30, [] {
        std::vector<Digraph::Arc> arcs;
        for (Vertex v = 0; v < 30; ++v) {
          arcs.push_back({v, static_cast<Vertex>((v + 1) % 30), 1.0});
        }
        return arcs;
      }());
  const std::vector<double> pi(30, 1.0 / 30.0);
  EXPECT_THROW((void)directed_cheeger_small(big, pi), std::invalid_argument);
  EXPECT_THROW(
      (void)directed_laplacian_lambda2(d, std::vector<double>{0.0, 1.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cobra::graph
