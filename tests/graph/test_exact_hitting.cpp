#include "graph/exact_hitting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cover_time.hpp"
#include "core/hitting_time.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/summary.hpp"

namespace cobra::graph {
namespace {

TEST(ExactHitting, CycleClosedForm) {
  // H(0, k) on C_n = k (n - k).
  const Graph g = make_cycle(12);
  const auto h = exact_rw_hitting_times(g, 0);
  for (Vertex k = 0; k < 12; ++k) {
    EXPECT_NEAR(h[k], static_cast<double>(k) * (12 - k), 1e-8) << "k=" << k;
  }
}

TEST(ExactHitting, CompleteClosedForm) {
  // H(u, v) on K_n = n - 1 for u != v.
  const Graph g = make_complete(9);
  const auto h = exact_rw_hitting_times(g, 4);
  for (Vertex u = 0; u < 9; ++u) {
    if (u == 4) {
      EXPECT_EQ(h[u], 0.0);
    } else {
      EXPECT_NEAR(h[u], 8.0, 1e-9);
    }
  }
}

TEST(ExactHitting, PathClosedForm) {
  // H(k, 0) on the path with vertices 0..N is k (2N - k): the walk must
  // fight the reflecting far end (k^2 would be the absorbing-both-ends
  // gambler's ruin, not the path graph).
  const Graph g = make_path(10);  // N = 9
  const auto h = exact_rw_hitting_times(g, 0);
  for (Vertex k = 0; k < 10; ++k) {
    EXPECT_NEAR(h[k], static_cast<double>(k) * (18.0 - k), 1e-8) << "k=" << k;
  }
}

TEST(ExactHitting, ReturnTimeClosedForm) {
  // R(v) = 2m / d(v) for every connected graph.
  const Graph g = make_star(10);
  EXPECT_NEAR(exact_rw_return_time(g, 0), 18.0 / 9.0, 1e-12);   // hub
  EXPECT_NEAR(exact_rw_return_time(g, 3), 18.0 / 1.0, 1e-12);   // leaf
}

TEST(ExactHitting, MaxHittingOnCycle) {
  const Graph g = make_cycle(16);
  // max_k k(16-k) = 8 * 8 = 64.
  EXPECT_NEAR(exact_rw_max_hitting_to(g, 0), 64.0, 1e-8);
}

TEST(ExactHitting, HmaxLollipopIsCubicScale) {
  // Lollipop's h_max grows like n^3; at small n check it dwarfs the cycle.
  const Graph lollipop = make_lollipop(16, 8);
  const Graph cycle = make_cycle(24);
  const double h_lollipop = exact_rw_hmax(lollipop).hmax;
  const double h_cycle = exact_rw_hmax(cycle).hmax;
  EXPECT_GT(h_lollipop, 3.0 * h_cycle);
  // And the extremal pair is clique-interior -> path-end.
  const auto est = exact_rw_hmax(lollipop);
  EXPECT_EQ(est.argmax_to, 23u);  // far end of the path
}

TEST(ExactHitting, SimulationMatchesExact) {
  // The Monte-Carlo RW hitting estimator must agree with the solver.
  const Graph g = make_grid(2, 4);
  const Vertex target = 15;
  const auto exact = exact_rw_hitting_times(g, target);
  par::MonteCarloOptions opts;
  opts.trials = 4000;
  opts.base_seed = 99;
  const auto samples = par::run_trials(
      par::global_pool(), opts, [&](core::Engine& gen, std::uint32_t) {
        return static_cast<double>(
            core::random_walk_hit(g, 0, target, gen).steps);
      });
  const auto s = stats::summarize(samples);
  EXPECT_NEAR(s.mean, exact[0], 3.0 * s.sem + 0.5);
}

TEST(ExactHitting, MatthewsUpperBoundHolds) {
  // Simulated RW cover time <= exact h_max * H_{n-1}.
  const Graph g = make_cycle(16);
  const double bound = matthews_upper_bound(g);
  par::MonteCarloOptions opts;
  opts.trials = 300;
  opts.base_seed = 7;
  const auto samples = par::run_trials(
      par::global_pool(), opts, [&](core::Engine& gen, std::uint32_t) {
        return static_cast<double>(core::random_walk_cover(g, 0, gen).steps);
      });
  EXPECT_LE(stats::mean_of(samples), bound);
  // Cycle cover time is exactly n(n-1)/2 = 120; the bound is ~64*3.3.
  EXPECT_NEAR(stats::mean_of(samples), 120.0, 10.0);
}

TEST(ExactHitting, InputValidation) {
  const Graph g = make_path(4);
  EXPECT_THROW(exact_rw_hitting_times(g, 9), std::out_of_range);
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(exact_rw_hitting_times(b.build(), 0), std::invalid_argument);
}

TEST(ExactHitting, SingleVertex) {
  GraphBuilder b(1);
  b.add_edge(0, 0);  // self-loop keeps degree positive
  const Graph g = b.build();
  const auto h = exact_rw_hitting_times(g, 0);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0], 0.0);
}

}  // namespace
}  // namespace cobra::graph
