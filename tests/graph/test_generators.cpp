#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/grid_coords.hpp"

namespace cobra::graph {
namespace {

TEST(Generators, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 4u);
  const Graph single = make_path(1);
  EXPECT_EQ(single.num_edges(), 0u);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(exact_diameter(g), 3u);
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, Complete) {
  const Graph g = make_complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(exact_diameter(g), 1u);
  EXPECT_TRUE(g.is_simple());
}

TEST(Generators, Star) {
  const Graph g = make_star(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  for (Vertex v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_EQ(exact_diameter(g), 2u);
}

TEST(Generators, Grid2D) {
  const Graph g = make_grid(2, 4);
  EXPECT_EQ(g.num_vertices(), 16u);
  // 2 * side * (side-1) edges = 2*4*3 = 24.
  EXPECT_EQ(g.num_edges(), 24u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.is_simple());
  // Corner degree 2, edge 3, interior 4.
  const GridCoords gc(2, 4);
  EXPECT_EQ(g.degree(gc.id(std::vector<std::uint32_t>{0, 0})), 2u);
  EXPECT_EQ(g.degree(gc.id(std::vector<std::uint32_t>{0, 1})), 3u);
  EXPECT_EQ(g.degree(gc.id(std::vector<std::uint32_t>{1, 1})), 4u);
  EXPECT_EQ(exact_diameter(g), 6u);
}

TEST(Generators, Grid3D) {
  const Graph g = make_grid(3, 3);
  EXPECT_EQ(g.num_vertices(), 27u);
  // 3 * side^2 * (side-1) = 3*9*2 = 54 edges.
  EXPECT_EQ(g.num_edges(), 54u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 6u);
  // Center vertex has degree 6.
  const GridCoords gc(3, 3);
  EXPECT_EQ(g.degree(gc.id(std::vector<std::uint32_t>{1, 1, 1})), 6u);
}

TEST(Generators, GridEdgesAreUnitManhattan) {
  const Graph g = make_grid(2, 5);
  const GridCoords gc(2, 5);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex u : g.neighbors(v)) {
      EXPECT_EQ(gc.manhattan(u, v), 1u);
    }
  }
}

TEST(Generators, Torus) {
  const Graph g = make_grid(2, 4, /*torus=*/true);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.num_edges(), 32u);  // 2 * n edges for 4-regular
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(exact_diameter(g), 4u);
}

TEST(Generators, TorusSide2FallsBackToGrid) {
  // side=2 wrap edges would duplicate existing edges; generator must skip.
  const Graph g = make_grid(2, 2, /*torus=*/true);
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n*d/2
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(exact_diameter(g), 4u);
  // Neighbors differ in exactly one bit.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex u : g.neighbors(v)) {
      EXPECT_EQ(__builtin_popcount(u ^ v), 1);
    }
  }
}

TEST(Generators, KaryTree) {
  const Graph g = make_kary_tree(3, 3);  // 1 + 3 + 9 = 13 vertices
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 3u);   // root
  EXPECT_EQ(g.degree(1), 4u);   // internal: parent + 3 children
  EXPECT_EQ(g.degree(12), 1u);  // leaf
  EXPECT_EQ(exact_diameter(g), 4u);
}

TEST(Generators, UnaryTreeIsPath) {
  const Graph g = make_kary_tree(1, 5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(exact_diameter(g), 4u);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(6, 4);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 15u + 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(9), 1u);            // path end
  EXPECT_EQ(g.degree(5), 6u);            // junction: 5 clique + 1 path
  EXPECT_EQ(exact_diameter(g), 5u);      // across clique + path
}

TEST(Generators, Barbell) {
  const Graph g = make_barbell(4, 2);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_TRUE(is_connected(g));
  // Two K4 (6 edges each) + path chain of 3 edges.
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.degree(4), 2u);  // path vertex
}

TEST(Generators, BarbellNoPath) {
  const Graph g = make_barbell(3, 0);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 7u);  // 3 + 3 + bridge
}

TEST(Generators, RandomRegular) {
  rng::Xoshiro256 gen(1);
  const Graph g = make_random_regular(gen, 100, 4);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_TRUE(g.is_simple());
  EXPECT_TRUE(is_connected(g));  // w.h.p. for d >= 3
}

TEST(Generators, RandomRegularOddProductThrows) {
  rng::Xoshiro256 gen(2);
  EXPECT_THROW(make_random_regular(gen, 5, 3), std::invalid_argument);
  EXPECT_THROW(make_random_regular(gen, 4, 4), std::invalid_argument);
}

TEST(Generators, RandomRegularDeterministicGivenSeed) {
  rng::Xoshiro256 g1(9), g2(9);
  const Graph a = make_random_regular(g1, 50, 4);
  const Graph b = make_random_regular(g2, 50, 4);
  EXPECT_EQ(a.targets(), b.targets());
}

TEST(Generators, ErdosRenyi) {
  rng::Xoshiro256 gen(3);
  const Graph g = make_erdos_renyi(gen, 500, 0.02);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Expected edges: C(500,2) * 0.02 ~ 2495; allow wide tolerance.
  EXPECT_GT(g.num_edges(), 2000u);
  EXPECT_LT(g.num_edges(), 3000u);
  EXPECT_TRUE(g.is_simple());
}

TEST(Generators, ErdosRenyiEdgeCases) {
  rng::Xoshiro256 gen(4);
  EXPECT_EQ(make_erdos_renyi(gen, 10, 0.0).num_edges(), 0u);
  EXPECT_EQ(make_erdos_renyi(gen, 10, 1.0).num_edges(), 45u);
  EXPECT_THROW(make_erdos_renyi(gen, 10, 1.5), std::invalid_argument);
}

TEST(Generators, ChungLuPowerLaw) {
  rng::Xoshiro256 gen(5);
  const Graph g = make_chung_lu_power_law(gen, 2000, 2.5, 3.0);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_TRUE(g.is_simple());
  // Power-law: early (heavy) vertices should far exceed median degree.
  EXPECT_GT(g.degree(0), 10u);
  EXPECT_GT(g.max_degree(), 4 * static_cast<std::uint32_t>(g.average_degree()));
}

TEST(Generators, BarabasiAlbert) {
  rng::Xoshiro256 gen(6);
  const Graph g = make_barabasi_albert(gen, 500, 3);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_TRUE(is_connected(g));
  // Each new vertex adds 3 edges; seed clique K4 has 6.
  EXPECT_EQ(g.num_edges(), 6u + 3u * (500u - 4u));
  EXPECT_GE(g.min_degree(), 3u);
  // Preferential attachment produces hubs.
  EXPECT_GT(g.max_degree(), 20u);
}

TEST(Generators, RandomGeometric) {
  rng::Xoshiro256 gen(7);
  const double radius = 0.08;
  const Graph g = make_random_geometric(gen, 1000, radius);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_TRUE(g.is_simple());
  // Expected average degree ~ n * pi r^2 ~ 20; tolerate broad range.
  EXPECT_GT(g.average_degree(), 10.0);
  EXPECT_LT(g.average_degree(), 30.0);
}

TEST(Generators, RandomGeometricMatchesBruteForce) {
  rng::Xoshiro256 gen(8);
  // The cell grid must produce exactly the distance-threshold graph; verify
  // on a small instance by checking every adjacent pair is <= r and every
  // non-adjacent pair is > r... adjacency alone (count) suffices given the
  // generator builds from the same points, so instead verify consistency:
  // degree sum equals twice edge count and no isolated clusters of radius
  // violations exist. The strong check: rebuild with radius large enough to
  // connect everything -> complete graph.
  const Graph g = make_random_geometric(gen, 50, 1.5);
  EXPECT_EQ(g.num_edges(), 50u * 49u / 2u);
}

TEST(Generators, DoubleClique) {
  const Graph g = make_double_clique(5);
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_edges(), 20u);  // 2 * C(5,2)
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(4), 8u);  // cut vertex belongs to both cliques
  EXPECT_EQ(exact_diameter(g), 2u);
}

// Property sweep: every generated family must be simple (unless documented),
// symmetric and within its degree contract.
struct FamilyCase {
  std::string name;
  std::function<Graph()> build;
  bool expect_connected;
};

class GeneratorFamilies : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(GeneratorFamilies, StructuralInvariants) {
  const Graph g = GetParam().build();
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_TRUE(g.is_simple());
  if (GetParam().expect_connected) {
    EXPECT_TRUE(is_connected(g));
  }
  // Handshake: volume == 2 |E|.
  EXPECT_EQ(g.volume(), 2 * g.num_edges());
  // Arc symmetry via has_edge.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex u : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratorFamilies,
    ::testing::Values(
        FamilyCase{"path", [] { return make_path(17); }, true},
        FamilyCase{"cycle", [] { return make_cycle(17); }, true},
        FamilyCase{"complete", [] { return make_complete(9); }, true},
        FamilyCase{"star", [] { return make_star(9); }, true},
        FamilyCase{"grid2", [] { return make_grid(2, 5); }, true},
        FamilyCase{"grid3", [] { return make_grid(3, 3); }, true},
        FamilyCase{"torus", [] { return make_grid(2, 5, true); }, true},
        FamilyCase{"hypercube", [] { return make_hypercube(5); }, true},
        FamilyCase{"tree23", [] { return make_kary_tree(2, 4); }, true},
        FamilyCase{"lollipop", [] { return make_lollipop(8, 8); }, true},
        FamilyCase{"barbell", [] { return make_barbell(5, 3); }, true},
        FamilyCase{"dclique", [] { return make_double_clique(6); }, true},
        FamilyCase{"regular",
                   [] {
                     rng::Xoshiro256 gen(11);
                     return make_random_regular(gen, 60, 4);
                   },
                   true},
        FamilyCase{"er",
                   [] {
                     rng::Xoshiro256 gen(12);
                     return make_erdos_renyi(gen, 200, 0.05);
                   },
                   false},
        FamilyCase{"chunglu",
                   [] {
                     rng::Xoshiro256 gen(13);
                     return make_chung_lu_power_law(gen, 300, 2.5);
                   },
                   false},
        FamilyCase{"ba",
                   [] {
                     rng::Xoshiro256 gen(14);
                     return make_barabasi_albert(gen, 200, 2);
                   },
                   true},
        FamilyCase{"rgg",
                   [] {
                     rng::Xoshiro256 gen(15);
                     return make_random_geometric(gen, 300, 0.12);
                   },
                   false}),
    [](const ::testing::TestParamInfo<FamilyCase>& tpi) {
      return tpi.param.name;
    });

}  // namespace
}  // namespace cobra::graph
