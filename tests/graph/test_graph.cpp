#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"

namespace cobra::graph {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return b.build();
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.volume(), 0u);
  EXPECT_TRUE(g.is_regular());
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(Graph, NeighborsSortedAndSymmetric) {
  const Graph g = triangle();
  for (Vertex v = 0; v < 3; ++v) {
    const auto nbrs = g.neighbors(v);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_LT(nbrs[0], nbrs[1]);
    for (const Vertex u : nbrs) EXPECT_TRUE(g.has_edge(u, v));
  }
}

TEST(Graph, NeighborIndexAccessor) {
  const Graph g = triangle();
  EXPECT_EQ(g.neighbor(0, 0), 1u);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
}

TEST(Graph, HasEdge) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 99));  // out of range is just "no"
}

TEST(Graph, DirectCsrConstruction) {
  // Path 0-1-2 in CSR form.
  const Graph g(3, {0, 1, 3, 4}, {1, 0, 2, 1});
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, CsrValidationRejectsBadOffsets) {
  EXPECT_THROW(Graph(2, {0, 1}, {1, 0}), std::invalid_argument);      // size
  EXPECT_THROW(Graph(2, {1, 1, 2}, {1, 0}), std::invalid_argument);   // start
  EXPECT_THROW(Graph(2, {0, 1, 3}, {1, 0}), std::invalid_argument);   // end
  EXPECT_THROW(Graph(2, {0, 2, 1}, {1}), std::invalid_argument);      // order
}

TEST(Graph, CsrValidationRejectsBadTargets) {
  EXPECT_THROW(Graph(2, {0, 1, 2}, {1, 5}), std::invalid_argument);
}

TEST(Graph, SelfLoopDetectedByIsSimple) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_FALSE(g.is_simple());
  // A self-loop contributes 2 to degree.
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Graph, ParallelEdgeDetectedByIsSimple) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_FALSE(g.is_simple());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, IrregularDegrees) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_FALSE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 0u);
  EXPECT_EQ(g.max_degree(), 1u);
}

TEST(Graph, ValidateAcceptsBuilderOutput) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  std::string why = "sentinel";
  EXPECT_TRUE(b.build().validate(&why));
  EXPECT_TRUE(why.empty());  // success clears the error
  EXPECT_TRUE(Graph(0, {0}, {}).validate(nullptr));
}

TEST(Graph, ValidateAcceptsSelfLoopsAndParallelEdges) {
  // Non-simple but structurally sound: a loop stores two arcs, a parallel
  // edge stores two in each direction.
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  std::string why;
  EXPECT_TRUE(b.build().validate(&why)) << why;
}

TEST(Graph, ValidateCatchesAsymmetricArcs) {
  // The constructor trusts its caller on arc symmetry (the documented
  // contract); validate() is the audit that catches a generator emitting
  // the arc 0->1 without its mate.
  const Graph g(2, {0, 1, 1}, {1});
  std::string why;
  EXPECT_FALSE(g.validate(&why));
  EXPECT_NE(why.find("asymmetric"), std::string::npos) << why;
}

TEST(Graph, ValidateCatchesArcMultiplicityMismatch) {
  // 0->1 twice but 1->0 once: each direction exists, multiplicities differ.
  const Graph g(2, {0, 2, 3}, {1, 1, 0});
  std::string why;
  EXPECT_FALSE(g.validate(&why));
  EXPECT_NE(why.find("asymmetric"), std::string::npos) << why;
}

TEST(Graph, ValidateCatchesOddSelfLoopArcs) {
  // A single (0, 0) arc is half a self-loop — degree bookkeeping breaks.
  const Graph g(2, {0, 1, 1}, {0});
  std::string why;
  EXPECT_FALSE(g.validate(&why));
  EXPECT_NE(why.find("self-loop"), std::string::npos) << why;
}

}  // namespace
}  // namespace cobra::graph
