#include "graph/grid_coords.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cobra::graph {
namespace {

TEST(GridCoords, RoundTripAllPoints2D) {
  const GridCoords gc(2, 5);
  EXPECT_EQ(gc.num_points(), 25u);
  for (Vertex id = 0; id < 25; ++id) {
    const auto c = gc.coords(id);
    EXPECT_EQ(gc.id(c), id);
  }
}

TEST(GridCoords, RowMajorLayout) {
  const GridCoords gc(2, 4);
  // Last axis fastest: (0,0)=0, (0,1)=1, ..., (1,0)=4.
  EXPECT_EQ(gc.id(std::vector<std::uint32_t>{0, 0}), 0u);
  EXPECT_EQ(gc.id(std::vector<std::uint32_t>{0, 1}), 1u);
  EXPECT_EQ(gc.id(std::vector<std::uint32_t>{1, 0}), 4u);
  EXPECT_EQ(gc.stride(0), 4u);
  EXPECT_EQ(gc.stride(1), 1u);
}

TEST(GridCoords, MixedExtents) {
  const GridCoords gc(std::vector<std::uint32_t>{2, 3, 4});
  EXPECT_EQ(gc.num_points(), 24u);
  EXPECT_EQ(gc.dimensions(), 3u);
  EXPECT_EQ(gc.extent(0), 2u);
  EXPECT_EQ(gc.extent(2), 4u);
  for (Vertex id = 0; id < 24; ++id) {
    EXPECT_EQ(gc.id(gc.coords(id)), id);
  }
}

TEST(GridCoords, Manhattan) {
  const GridCoords gc(2, 10);
  const Vertex a = gc.id(std::vector<std::uint32_t>{1, 2});
  const Vertex b = gc.id(std::vector<std::uint32_t>{4, 9});
  EXPECT_EQ(gc.manhattan(a, b), 10u);
  EXPECT_EQ(gc.manhattan(a, a), 0u);
  EXPECT_EQ(gc.manhattan(b, a), 10u);
}

TEST(GridCoords, OneDimension) {
  const GridCoords gc(1, 7);
  EXPECT_EQ(gc.num_points(), 7u);
  EXPECT_EQ(gc.coords(3), (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(gc.manhattan(1, 6), 5u);
}

TEST(GridCoords, InvalidConstruction) {
  EXPECT_THROW(GridCoords(std::vector<std::uint32_t>{}), std::invalid_argument);
  EXPECT_THROW(GridCoords(std::vector<std::uint32_t>{3, 0}), std::invalid_argument);
  // 2^17 per axis, 3 axes = 2^51 points: too many.
  EXPECT_THROW(GridCoords(3, 1u << 17), std::invalid_argument);
}

TEST(GridCoords, OutOfRangeAccess) {
  const GridCoords gc(2, 3);
  EXPECT_THROW(gc.coords(9), std::out_of_range);
  EXPECT_THROW((void)gc.id(std::vector<std::uint32_t>{0, 3}), std::out_of_range);
  EXPECT_THROW((void)gc.id(std::vector<std::uint32_t>{0}), std::out_of_range);
}

TEST(GridCoords, LargeGridWithinBudget) {
  // 2^10 per axis, 3 axes = 2^30 points: allowed (fits in 32 bits).
  const GridCoords gc(3, 1u << 10);
  EXPECT_EQ(gc.num_points(), 1u << 30);
  const Vertex last = gc.num_points() - 1;
  const auto c = gc.coords(last);
  for (const auto x : c) EXPECT_EQ(x, (1u << 10) - 1);
}

}  // namespace
}  // namespace cobra::graph
