#include "graph/mixing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"

namespace cobra::graph {
namespace {

TEST(Mixing, StationaryOfIsNormalizedAndDegreeProportional) {
  const Graph g = make_star(6);
  const auto pi = stationary_of(g);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(pi[0], 0.5, 1e-12);        // hub: 5/10
  EXPECT_NEAR(pi[1], 0.1, 1e-12);        // leaf: 1/10
}

TEST(Mixing, StepConservesMass) {
  const Graph g = make_grid(2, 4);
  std::vector<double> in(g.num_vertices(), 0.0), out(g.num_vertices());
  in[3] = 1.0;
  lazy_walk_step(g, in, out);
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(out[3], 0.5, 1e-12);  // laziness mass
}

TEST(Mixing, DistributionConvergesToStationary) {
  const Graph g = make_cycle(16);
  const double tv0 = tv_to_stationarity(g, 0, 0);
  const double tv_late = tv_to_stationarity(g, 0, 2000);
  EXPECT_NEAR(tv0, 1.0 - 1.0 / 16.0, 1e-12);  // point mass vs uniform
  EXPECT_LT(tv_late, 1e-6);
}

TEST(Mixing, TVIsMonotoneDecreasing) {
  const Graph g = make_grid(2, 5);
  double prev = 2.0;
  for (const std::uint64_t t : {0ull, 5ull, 20ull, 80ull, 320ull}) {
    const double tv = tv_to_stationarity(g, 0, t);
    EXPECT_LE(tv, prev + 1e-12);
    prev = tv;
  }
}

TEST(Mixing, MixingTimeOrdersFamiliesCorrectly) {
  // Complete mixes fastest, cycle slowest, at equal n.
  const std::uint64_t cap = 1u << 20;
  const auto t_complete = lazy_mixing_time(make_complete(32), 0, 0.25, cap);
  const auto t_hypercube = lazy_mixing_time(make_hypercube(5), 0, 0.25, cap);
  const auto t_cycle = lazy_mixing_time(make_cycle(32), 0, 0.25, cap);
  EXPECT_LT(t_complete, t_hypercube);
  EXPECT_LT(t_hypercube, t_cycle);
  EXPECT_LT(t_cycle, cap);
}

TEST(Mixing, SpectralUpperBoundOnDeviation) {
  // The paper's §4 bound: max_v |p_t(v) - pi(v)| <= e^{-t Phi^2 / 2}
  // (stated for regular graphs via the normalized-Laplacian gap; we use
  // the spectral gap form with the measured lazy gap, which is the tight
  // version: deviation <= (1 - gap)^t / min_pi... check the conservative
  // e^{-t * gap} envelope instead).
  const Graph g = make_hypercube(5);
  const double gap = lazy_walk_spectrum(g).spectral_gap;
  for (const std::uint64_t t : {16ull, 32ull, 64ull, 128ull}) {
    const double deviation = max_coordinate_deviation(g, 0, t);
    const double envelope =
        std::exp(-static_cast<double>(t) * gap) * g.num_vertices();
    EXPECT_LE(deviation, envelope) << "t=" << t;
  }
}

TEST(Mixing, CycleMixingIsQuadratic) {
  // t_mix(C_n) ~ n^2: quadrupling n should take ~16x longer (allow slack).
  const auto t16 = lazy_mixing_time(make_cycle(16), 0, 0.25, 1u << 22);
  const auto t64 = lazy_mixing_time(make_cycle(64), 0, 0.25, 1u << 22);
  const double ratio = static_cast<double>(t64) / static_cast<double>(t16);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 32.0);
}

TEST(Mixing, InputValidation) {
  const Graph g = make_path(4);
  EXPECT_THROW(lazy_walk_distribution(g, 9, 1), std::out_of_range);
  EXPECT_THROW((void)lazy_mixing_time(g, 9, 0.1, 10), std::out_of_range);
  GraphBuilder b(2);
  EXPECT_THROW(lazy_walk_distribution(b.build(), 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::graph
