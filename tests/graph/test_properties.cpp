#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace cobra::graph {
namespace {

TEST(Properties, DegreeHistogram) {
  const Graph g = make_star(6);  // hub degree 5, five leaves degree 1
  const auto histogram = degree_histogram(g);
  ASSERT_EQ(histogram.size(), 6u);
  EXPECT_EQ(histogram[1], 5u);
  EXPECT_EQ(histogram[5], 1u);
  EXPECT_EQ(histogram[0], 0u);
  EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(), 0ull), 6ull);
}

TEST(Properties, TriangleCountKnownGraphs) {
  EXPECT_EQ(triangle_count(make_complete(5)), 10u);  // C(5,3)
  EXPECT_EQ(triangle_count(make_cycle(5)), 0u);
  EXPECT_EQ(triangle_count(make_cycle(3)), 1u);
  EXPECT_EQ(triangle_count(make_kary_tree(2, 4)), 0u);
  EXPECT_EQ(triangle_count(make_grid(2, 4)), 0u);  // bipartite
}

TEST(Properties, ClusteringCompleteGraphIsOne) {
  const Graph g = make_complete(6);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering(g, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering(g), 1.0);
}

TEST(Properties, ClusteringTreeIsZero) {
  const Graph g = make_kary_tree(3, 3);
  EXPECT_DOUBLE_EQ(average_clustering(g), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering(g), 0.0);
}

TEST(Properties, LocalClusteringHandComputed) {
  // Lollipop(4, 1): clique K4 + pendant on vertex 3. Vertex 3 has degree
  // 4 (three clique edges + pendant); triangles through it: C(3,2) = 3
  // pairs among clique neighbors, all adjacent -> 3. Possible C(4,2) = 6.
  const Graph g = make_lollipop(4, 1);
  EXPECT_DOUBLE_EQ(local_clustering(g, 3), 0.5);
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 1.0);   // pure clique vertex
  EXPECT_DOUBLE_EQ(local_clustering(g, 4), 0.0);   // pendant, degree 1
}

TEST(Properties, GeometricGraphHasHighClustering) {
  rng::Xoshiro256 gen(1);
  const Graph geometric = make_random_geometric(gen, 800, 0.08);
  const Graph er = make_erdos_renyi(gen, 800,
                                    geometric.average_degree() / 799.0);
  // Proximity graphs have strong triangle closure; ER of equal density
  // does not.
  EXPECT_GT(average_clustering(geometric), 0.4);
  EXPECT_LT(average_clustering(er), 0.1);
}

TEST(Properties, AssortativityStarIsNegative) {
  // Hubs connect to leaves only: perfectly disassortative.
  const Graph g = make_star(20);
  EXPECT_NEAR(degree_assortativity(g), -1.0, 1e-9);
}

TEST(Properties, AssortativityRegularIsZeroByConvention) {
  EXPECT_DOUBLE_EQ(degree_assortativity(make_cycle(10)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(make_complete(7)), 0.0);
}

TEST(Properties, AssortativityPreferentialAttachmentNegative) {
  rng::Xoshiro256 gen(2);
  const Graph g = make_barabasi_albert(gen, 2000, 3);
  EXPECT_LT(degree_assortativity(g), 0.0);
  EXPECT_GT(degree_assortativity(g), -1.0);
}

TEST(Properties, HillEstimatorRecoversChungLuGamma) {
  rng::Xoshiro256 gen(3);
  const Graph g = make_chung_lu_power_law(gen, 20000, 2.5, 3.0);
  const double gamma = hill_tail_exponent(g, 10);
  EXPECT_GT(gamma, 2.0);
  EXPECT_LT(gamma, 3.2);
}

TEST(Properties, HillEstimatorDegenerateCases) {
  EXPECT_EQ(hill_tail_exponent(make_cycle(50), 0), 0.0);
  // All degrees equal d_min: log-sum is zero -> 0 sentinel.
  EXPECT_EQ(hill_tail_exponent(make_cycle(50), 2), 0.0);
  // Too few qualifying vertices.
  EXPECT_EQ(hill_tail_exponent(make_star(5), 4), 0.0);
}

}  // namespace
}  // namespace cobra::graph
