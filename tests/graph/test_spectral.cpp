#include "graph/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace cobra::graph {
namespace {

TEST(CutConductance, HandComputed) {
  // Path 0-1-2-3; S = {0, 1}: boundary = 1 edge, vol(S) = 1 + 2 = 3.
  const Graph g = make_path(4);
  const double phi = cut_conductance(g, {true, true, false, false});
  EXPECT_DOUBLE_EQ(phi, 1.0 / 3.0);
}

TEST(CutConductance, TakesSmallerSide) {
  // S = {0}: vol(S) = 1, complement vol = 5; boundary 1 -> 1/1.
  const Graph g = make_path(4);
  EXPECT_DOUBLE_EQ(cut_conductance(g, {true, false, false, false}), 1.0);
  // Complement mask must give the same value.
  EXPECT_DOUBLE_EQ(cut_conductance(g, {false, true, true, true}), 1.0);
}

TEST(CutConductance, DegenerateCutIsInfinite) {
  const Graph g = make_cycle(4);
  EXPECT_TRUE(std::isinf(cut_conductance(g, {false, false, false, false})));
  EXPECT_TRUE(std::isinf(cut_conductance(g, {true, true, true, true})));
}

TEST(ExactConductance, CompleteGraph) {
  // K4: min cut is a single vertex or pair; phi(K4) = min over subsets.
  // S={v}: boundary 3, vol 3 -> 1. S={u,v}: boundary 4, vol 6 -> 2/3.
  const Graph g = make_complete(4);
  EXPECT_NEAR(exact_conductance_small(g), 2.0 / 3.0, 1e-12);
}

TEST(ExactConductance, CycleHalves) {
  // C8: best cut is two arcs of 4; boundary 2, vol 8 -> 1/4.
  const Graph g = make_cycle(8);
  EXPECT_NEAR(exact_conductance_small(g), 0.25, 1e-12);
}

TEST(ExactConductance, BarbellIsBottlenecked) {
  // Two K5 joined by an edge: cutting the bridge gives phi ~ 1/21.
  const Graph g = make_barbell(5, 0);
  EXPECT_NEAR(exact_conductance_small(g), 1.0 / 21.0, 1e-12);
}

TEST(ExactConductance, RangeGuard) {
  EXPECT_THROW((void)exact_conductance_small(make_path(1)), std::invalid_argument);
  // n = 25 > 24 is rejected.
  EXPECT_THROW((void)exact_conductance_small(make_grid(2, 5)), std::invalid_argument);
}

TEST(Spectrum, CycleMatchesClosedForm) {
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    const Graph g = make_cycle(n);
    const SpectralResult spec = lazy_walk_spectrum(g);
    EXPECT_TRUE(spec.converged);
    EXPECT_NEAR(spec.spectral_gap, cycle_lazy_gap(n), 1e-6) << "n = " << n;
  }
}

TEST(Spectrum, HypercubeMatchesClosedForm) {
  for (const std::uint32_t d : {3u, 5u, 7u}) {
    const Graph g = make_hypercube(d);
    const SpectralResult spec = lazy_walk_spectrum(g);
    EXPECT_TRUE(spec.converged);
    EXPECT_NEAR(spec.spectral_gap, hypercube_lazy_gap(d), 1e-6) << "d = " << d;
  }
}

TEST(Spectrum, CompleteMatchesClosedForm) {
  for (const std::uint32_t n : {4u, 8u, 16u}) {
    const Graph g = make_complete(n);
    const SpectralResult spec = lazy_walk_spectrum(g);
    EXPECT_NEAR(spec.spectral_gap, complete_lazy_gap(n), 1e-6) << "n = " << n;
  }
}

TEST(Spectrum, GapInUnitInterval) {
  rng::Xoshiro256 gen(1);
  const Graph g = make_random_regular(gen, 64, 4);
  const SpectralResult spec = lazy_walk_spectrum(g);
  EXPECT_GE(spec.lambda2, 0.0);
  EXPECT_LE(spec.lambda2, 1.0);
  EXPECT_GT(spec.spectral_gap, 0.0);
}

TEST(Spectrum, ExpanderHasLargeGapPathHasSmallGap) {
  rng::Xoshiro256 gen(2);
  const Graph expander = make_random_regular(gen, 128, 6);
  const Graph path = make_path(128);
  const double gap_expander = lazy_walk_spectrum(expander).spectral_gap;
  const double gap_path = lazy_walk_spectrum(path).spectral_gap;
  EXPECT_GT(gap_expander, 20.0 * gap_path);
}

TEST(SweepCut, FindsBarbellBottleneck) {
  const Graph g = make_barbell(8, 0);
  const SpectralResult spec = lazy_walk_spectrum(g);
  const double sweep = sweep_cut_conductance(g, spec.fiedler);
  // The optimal cut is the bridge: phi = 1 / (8*7 + 1) = 1/57.
  EXPECT_NEAR(sweep, 1.0 / 57.0, 1e-9);
}

TEST(SweepCut, NeverBelowExactConductance) {
  // Sweep cut is a genuine cut, so its conductance upper-bounds the exact.
  for (const Graph& g :
       {make_cycle(12), make_complete(6), make_barbell(4, 2), make_path(10)}) {
    const SpectralResult spec = lazy_walk_spectrum(g);
    const double sweep = sweep_cut_conductance(g, spec.fiedler);
    const double exact = exact_conductance_small(g);
    EXPECT_GE(sweep, exact - 1e-9);
  }
}

TEST(EstimateConductance, CheegerSandwichHolds) {
  for (const Graph& g :
       {make_cycle(16), make_hypercube(4), make_complete(8), make_barbell(5, 1)}) {
    const ConductanceEstimate est = estimate_conductance(g);
    const double exact = exact_conductance_small(g);
    EXPECT_LE(est.cheeger_lower, exact + 1e-6);
    EXPECT_GE(est.cheeger_upper, exact - 1e-6);
    EXPECT_GE(est.sweep_cut_upper, exact - 1e-9);
    EXPECT_GE(est.point(), 0.0);
  }
}

TEST(EstimateConductance, HypercubeSweepWithinCheegerBand) {
  // Phi(Q_d) = 1/d exactly (dimension cut). The lambda2 eigenspace of the
  // hypercube is d-fold degenerate, so power iteration lands on an
  // arbitrary mix of dimension functions and the sweep cut is NOT
  // guaranteed to find the optimal cut — only the Cheeger band
  // 1/d <= sweep <= sqrt(2 * lambda) with lambda = 2/d.
  for (const std::uint32_t d : {3u, 4u, 5u}) {
    const ConductanceEstimate est = estimate_conductance(make_hypercube(d));
    EXPECT_GE(est.sweep_cut_upper, 1.0 / d - 1e-9) << "d = " << d;
    EXPECT_LE(est.sweep_cut_upper, std::sqrt(4.0 / d) + 1e-9) << "d = " << d;
  }
}

TEST(Spectrum, GuardsInvalidInput) {
  EXPECT_THROW(lazy_walk_spectrum(make_path(1)), std::invalid_argument);
  GraphBuilder b(3);
  b.add_edge(0, 1);  // vertex 2 isolated
  EXPECT_THROW(lazy_walk_spectrum(b.build()), std::invalid_argument);
}

TEST(ClosedForms, GuardDomains) {
  EXPECT_THROW((void)cycle_lazy_gap(2), std::invalid_argument);
  EXPECT_THROW((void)hypercube_lazy_gap(0), std::invalid_argument);
  EXPECT_THROW((void)complete_lazy_gap(1), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::graph
