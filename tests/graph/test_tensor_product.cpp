#include "graph/tensor_product.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace cobra::graph {
namespace {

TEST(TensorId, RoundTrip) {
  constexpr std::uint32_t n = 7;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex up = 0; up < n; ++up) {
      const Vertex id = tensor_id(u, up, n);
      const auto [a, b] = tensor_pair(id, n);
      EXPECT_EQ(a, u);
      EXPECT_EQ(b, up);
      EXPECT_EQ(is_diagonal(id, n), u == up);
    }
  }
}

TEST(TensorProduct, SizesAndDegrees) {
  const Graph g = make_cycle(5);
  const Graph product = tensor_product(g);
  EXPECT_EQ(product.num_vertices(), 25u);
  // Tensor product of d-regular graphs is d^2-regular.
  EXPECT_TRUE(product.is_regular());
  EXPECT_EQ(product.degree(0), 4u);
  EXPECT_EQ(product.num_edges(), 25u * 4u / 2u);
}

TEST(TensorProduct, EdgesAreCoordinatewiseAdjacent) {
  const Graph g = make_complete(4);
  const Graph product = tensor_product(g);
  const std::uint32_t n = g.num_vertices();
  for (Vertex pv = 0; pv < product.num_vertices(); ++pv) {
    const auto [u, up] = tensor_pair(pv, n);
    for (const Vertex pw : product.neighbors(pv)) {
      const auto [v, vp] = tensor_pair(pw, n);
      EXPECT_TRUE(g.has_edge(u, v));
      EXPECT_TRUE(g.has_edge(up, vp));
    }
  }
}

TEST(TensorProduct, BipartiteFactorGivesDisconnectedProduct) {
  // The tensor product of a connected bipartite graph with itself is
  // disconnected (parity classes) — classic fact; C4 x C4 splits.
  const Graph g = make_cycle(4);
  const Graph product = tensor_product(g);
  EXPECT_GT(num_components(product), 1u);
}

TEST(WaltPairDigraph, SizesAndOutWeights) {
  const Graph g = make_cycle(5);  // 2-regular, n = 5
  const Digraph d = walt_pair_digraph(g);
  EXPECT_EQ(d.num_vertices(), 25u);
  const std::uint32_t n = 5;
  const double deg = 2.0;
  for (Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    const double expected =
        is_diagonal(pv, n) ? 2.0 * deg * deg : deg * deg;
    EXPECT_NEAR(d.out_weight_total(pv), expected, 1e-12) << "pv=" << pv;
  }
}

TEST(WaltPairDigraph, IsEulerian) {
  // The paper's construction must be weight-balanced for every regular G.
  rng::Xoshiro256 gen(1);
  for (const Graph& g : {make_cycle(6), make_complete(5), make_hypercube(3),
                         make_random_regular(gen, 12, 4)}) {
    EXPECT_TRUE(walt_pair_digraph(g).is_weight_balanced())
        << "n=" << g.num_vertices() << " d=" << g.degree(0);
  }
}

TEST(WaltPairDigraph, StationaryMatchesClosedForm) {
  // pi(S1) = 2/(n^2+n), pi(S2) = 1/(n^2+n) — Lemma 11's key numbers. The
  // chain is periodic on bipartite-ish structures; average two consecutive
  // iterates... simpler: K4 is aperiodic enough via the S1 copy structure.
  const Graph g = make_complete(4);
  const Digraph d = walt_pair_digraph(g);
  ASSERT_TRUE(d.is_weight_balanced());
  // For an Eulerian chain the stationary distribution is exactly
  // out-weight proportional regardless of periodicity; verify against the
  // closed form directly (no iteration needed).
  const auto closed = walt_pair_stationary(4);
  double total = 0.0;
  for (Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    total += d.out_weight_total(pv);
  }
  for (Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    const double pi_v = d.out_weight_total(pv) / total;
    EXPECT_NEAR(pi_v,
                is_diagonal(pv, 4) ? closed.diagonal : closed.off_diagonal,
                1e-12);
  }
  // And the closed form itself sums to 1: n diagonal + n^2-n off.
  EXPECT_NEAR(4 * closed.diagonal + 12 * closed.off_diagonal, 1.0, 1e-12);
}

TEST(WaltPairDigraph, PowerIterationAgreesOnAperiodicGraph) {
  // K5 (odd cliques are aperiodic): the iterated distribution should reach
  // the Eulerian closed form.
  const Graph g = make_complete(5);
  const Digraph d = walt_pair_digraph(g);
  const auto pi = d.stationary_distribution(200000, 1e-13);
  const auto closed = walt_pair_stationary(5);
  for (Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    EXPECT_NEAR(pi[pv],
                is_diagonal(pv, 5) ? closed.diagonal : closed.off_diagonal,
                1e-6)
        << "pv=" << pv;
  }
}

TEST(WaltPairDigraph, RejectsIrregularOrMulti) {
  EXPECT_THROW(walt_pair_digraph(make_star(5)), std::invalid_argument);
  EXPECT_THROW(walt_pair_digraph(make_path(4)), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::graph
