/// Cross-RNG validation: key statistical results must agree under two
/// structurally different generators (xoshiro256++ vs PCG32x64). This is
/// the standard hygiene test for Monte-Carlo code — agreement rules out
/// generator artifacts in the headline numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "rng/distributions.hpp"
#include "rng/pcg32.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra {
namespace {

using graph::Graph;
using graph::Vertex;

/// A generator-generic single-source cobra cover (the library's production
/// CobraWalk fixes Engine = Xoshiro256; this mirror exercises the identical
/// algorithm under any full-range generator).
template <rng::Uint64Generator G>
std::uint64_t generic_cobra_cover(const Graph& g, Vertex start, G& gen,
                                  std::uint64_t max_steps) {
  std::vector<Vertex> frontier{start};
  std::vector<Vertex> next;
  std::vector<std::uint32_t> stamp(g.num_vertices(), 0);
  std::vector<std::uint8_t> covered(g.num_vertices(), 0);
  std::uint32_t epoch = 0;
  std::uint32_t covered_count = 1;
  covered[start] = 1;
  std::uint64_t steps = 0;
  while (covered_count < g.num_vertices() && steps < max_steps) {
    ++epoch;
    next.clear();
    for (const Vertex v : frontier) {
      const auto nbrs = g.neighbors(v);
      for (int i = 0; i < 2; ++i) {
        const Vertex u = nbrs[static_cast<std::size_t>(
            rng::uniform_below(gen, nbrs.size()))];
        if (stamp[u] != epoch) {
          stamp[u] = epoch;
          next.push_back(u);
          if (covered[u] == 0) {
            covered[u] = 1;
            ++covered_count;
          }
        }
      }
    }
    frontier.swap(next);
    ++steps;
  }
  return steps;
}

TEST(CrossRng, CobraCoverMeansAgreeOnGrid) {
  const Graph g = graph::make_grid(2, 8);
  constexpr int kTrials = 200;
  double xo_total = 0, pcg_total = 0;
  for (int t = 0; t < kTrials; ++t) {
    rng::Xoshiro256 xo(rng::derive_seed(1, static_cast<std::uint64_t>(t)));
    xo_total += static_cast<double>(generic_cobra_cover(g, 0, xo, 1u << 22));
    rng::Pcg32x64 pcg(rng::derive_seed(2, static_cast<std::uint64_t>(t)), 54u);
    pcg_total += static_cast<double>(generic_cobra_cover(g, 0, pcg, 1u << 22));
  }
  const double xo_mean = xo_total / kTrials;
  const double pcg_mean = pcg_total / kTrials;
  EXPECT_NEAR(xo_mean / pcg_mean, 1.0, 0.15)
      << "xoshiro " << xo_mean << " vs pcg " << pcg_mean;
}

TEST(CrossRng, CobraCoverMeansAgreeOnExpander) {
  rng::Xoshiro256 graph_gen(5);
  const Graph g = graph::make_random_regular(graph_gen, 128, 4);
  constexpr int kTrials = 300;
  double xo_total = 0, pcg_total = 0;
  for (int t = 0; t < kTrials; ++t) {
    rng::Xoshiro256 xo(rng::derive_seed(3, static_cast<std::uint64_t>(t)));
    xo_total += static_cast<double>(generic_cobra_cover(g, 0, xo, 1u << 22));
    rng::Pcg32x64 pcg(rng::derive_seed(4, static_cast<std::uint64_t>(t)), 99u);
    pcg_total += static_cast<double>(generic_cobra_cover(g, 0, pcg, 1u << 22));
  }
  EXPECT_NEAR((xo_total / kTrials) / (pcg_total / kTrials), 1.0, 0.15);
}

TEST(CrossRng, UniformBelowAgreesAcrossEngines) {
  // First-moment agreement of the bounded sampler across engines.
  rng::Xoshiro256 xo(7);
  rng::Pcg32x64 pcg(7, 3);
  constexpr int kDraws = 500000;
  constexpr std::uint64_t kBound = 1000;
  double xo_total = 0, pcg_total = 0;
  for (int i = 0; i < kDraws; ++i) {
    xo_total += static_cast<double>(rng::uniform_below(xo, kBound));
    pcg_total += static_cast<double>(rng::uniform_below(pcg, kBound));
  }
  EXPECT_NEAR(xo_total / kDraws, 499.5, 2.0);
  EXPECT_NEAR(pcg_total / kDraws, 499.5, 2.0);
}

}  // namespace
}  // namespace cobra
