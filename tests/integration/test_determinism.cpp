/// Determinism audit: every randomized component must be a pure function
/// of its seed. This is what makes EXPERIMENTS.md reproducible, so it gets
/// its own suite — any component that silently reads global state (time,
/// thread ids, ...) fails here.

#include <gtest/gtest.h>

#include <vector>

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "core/gossip.hpp"
#include "core/grid_drift.hpp"
#include "core/pair_walk.hpp"
#include "core/walt.hpp"
#include "graph/generators.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/bootstrap.hpp"

namespace cobra {
namespace {

using core::Engine;
using graph::Graph;
using graph::Vertex;

template <typename MakeGraph>
void expect_same_graph(MakeGraph&& make) {
  rng::Xoshiro256 g1(777), g2(777);
  const Graph a = make(g1);
  const Graph b = make(g2);
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.targets(), b.targets());
}

TEST(Determinism, AllRandomGeneratorsSeedPure) {
  expect_same_graph(
      [](rng::Xoshiro256& gen) { return graph::make_random_regular(gen, 80, 4); });
  expect_same_graph(
      [](rng::Xoshiro256& gen) { return graph::make_erdos_renyi(gen, 150, 0.05); });
  expect_same_graph([](rng::Xoshiro256& gen) {
    return graph::make_chung_lu_power_law(gen, 200, 2.5);
  });
  expect_same_graph([](rng::Xoshiro256& gen) {
    return graph::make_barabasi_albert(gen, 150, 2);
  });
  expect_same_graph([](rng::Xoshiro256& gen) {
    return graph::make_random_geometric(gen, 200, 0.12);
  });
}

TEST(Determinism, ProcessesReplayExactly) {
  const Graph g = graph::make_grid(2, 6);
  {
    Engine e1(5), e2(5);
    core::Walt w1(g, 0, 10, true), w2(g, 0, 10, true);
    for (int t = 0; t < 200; ++t) {
      w1.step(e1);
      w2.step(e2);
      ASSERT_EQ(std::vector<Vertex>(w1.pebbles().begin(), w1.pebbles().end()),
                std::vector<Vertex>(w2.pebbles().begin(), w2.pebbles().end()));
    }
  }
  {
    Engine e1(6), e2(6);
    core::Gossip a(g, 0), b(g, 0);
    for (int t = 0; t < 50; ++t) {
      a.step(e1);
      b.step(e2);
      ASSERT_EQ(a.informed_count(), b.informed_count());
    }
  }
  {
    Engine e1(7), e2(7);
    core::PairWalk a(g, 0, 5), b(g, 0, 5);
    for (int t = 0; t < 200; ++t) {
      a.step(e1);
      b.step(e2);
      ASSERT_EQ(a.positions(), b.positions());
    }
  }
  {
    Engine e1(8), e2(8);
    core::GridDriftWalk a(3, 5, 10), b(3, 5, 10);
    for (int t = 0; t < 200; ++t) {
      a.step(e1);
      b.step(e2);
      ASSERT_EQ(std::vector<std::uint32_t>(a.distances().begin(),
                                           a.distances().end()),
                std::vector<std::uint32_t>(b.distances().begin(),
                                           b.distances().end()));
    }
  }
}

TEST(Determinism, MonteCarloRepeatable) {
  const Graph g = graph::make_cycle(32);
  par::MonteCarloOptions opts;
  opts.trials = 64;
  opts.base_seed = 1234;
  auto trial = [&](Engine& gen, std::uint32_t) {
    return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
  };
  const auto a = par::run_trials(par::global_pool(), opts, trial);
  const auto b = par::run_trials(par::global_pool(), opts, trial);
  EXPECT_EQ(a, b);
}

TEST(Determinism, BootstrapRepeatable) {
  const std::vector<double> sample{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const auto a = stats::bootstrap_mean_ci(sample, 0.95, 300, 42);
  const auto b = stats::bootstrap_mean_ci(sample, 0.95, 300, 42);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(Determinism, EngineCopyIndependence) {
  // Copies of an engine diverge only by their own use, never shared state.
  Engine original(9);
  Engine copy = original;
  const auto from_original = original();
  const auto from_copy = copy();
  EXPECT_EQ(from_original, from_copy);
  (void)original();
  Engine copy2 = copy;
  EXPECT_EQ(copy(), copy2());
}

}  // namespace
}  // namespace cobra
