/// Statistical certification of the randomized generators: each family's
/// headline statistic matches its theory within tolerance. These go beyond
/// the structural invariants in graph/test_generators.cpp — they check the
/// DISTRIBUTIONS the experiments rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/spectral.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra {
namespace {

using graph::Graph;

TEST(GeneratorStats, ErdosRenyiEdgeCountConcentrates) {
  // E[m] = C(n,2) p; repeat and compare the sample mean within 3 sigma.
  rng::Xoshiro256 gen(1);
  const std::uint32_t n = 400;
  const double p = 0.03;
  const double expected = n * (n - 1) / 2.0 * p;
  const double sigma = std::sqrt(n * (n - 1) / 2.0 * p * (1 - p));
  double total = 0.0;
  constexpr int kReps = 50;
  for (int rep = 0; rep < kReps; ++rep) {
    total += static_cast<double>(graph::make_erdos_renyi(gen, n, p).num_edges());
  }
  EXPECT_NEAR(total / kReps, expected, 3.0 * sigma / std::sqrt(kReps));
}

TEST(GeneratorStats, ErdosRenyiAboveThresholdIsConnected) {
  // p = 3 ln n / n is safely above the connectivity threshold.
  rng::Xoshiro256 gen(2);
  const std::uint32_t n = 300;
  const double p = 3.0 * std::log(n) / n;
  int connected = 0;
  for (int rep = 0; rep < 20; ++rep) {
    if (graph::is_connected(graph::make_erdos_renyi(gen, n, p))) ++connected;
  }
  EXPECT_GE(connected, 19);
}

TEST(GeneratorStats, RandomRegularIsExpanderWhp) {
  // Random 4-regular graphs have lazy spectral gap bounded away from 0.
  rng::Xoshiro256 gen(3);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = graph::make_random_regular(gen, 200, 4);
    ASSERT_TRUE(graph::is_connected(g));
    EXPECT_GT(graph::lazy_walk_spectrum(g).spectral_gap, 0.05) << rep;
  }
}

TEST(GeneratorStats, RandomRegularEdgeMarginalsUniformish) {
  // Each particular edge {0, 1} appears with probability ~ d/(n-1).
  rng::Xoshiro256 gen(4);
  const std::uint32_t n = 60, d = 4;
  int present = 0;
  constexpr int kReps = 3000;
  for (int rep = 0; rep < kReps; ++rep) {
    if (graph::make_random_regular(gen, n, d).has_edge(0, 1)) ++present;
  }
  const double expected = static_cast<double>(d) / (n - 1);
  EXPECT_NEAR(static_cast<double>(present) / kReps, expected, 0.015);
}

TEST(GeneratorStats, BarabasiAlbertDegreeTailIsPowerLaw) {
  // BA degree distribution has tail exponent ~3.
  rng::Xoshiro256 gen(5);
  const Graph g = graph::make_barabasi_albert(gen, 20000, 3);
  const double gamma = graph::hill_tail_exponent(g, 12);
  EXPECT_GT(gamma, 2.3);
  EXPECT_LT(gamma, 3.7);
}

TEST(GeneratorStats, ChungLuAverageDegreeMatchesWeights) {
  // Expected average degree for gamma = 2.5, min_deg = 3 is roughly
  // min_deg * (gamma-1)/(gamma-2) = 9 (weight-sequence mean); allow wide
  // tolerance for the cap and discreteness.
  rng::Xoshiro256 gen(6);
  const Graph g = graph::make_chung_lu_power_law(gen, 5000, 2.5, 3.0);
  EXPECT_GT(g.average_degree(), 4.0);
  EXPECT_LT(g.average_degree(), 14.0);
}

TEST(GeneratorStats, GeometricGraphDegreeMatchesDensity) {
  // E[deg] ~ n pi r^2 away from the border; measure the interior mean.
  rng::Xoshiro256 gen(7);
  const std::uint32_t n = 3000;
  const double r = 0.05;
  const Graph g = graph::make_random_geometric(gen, n, r);
  const double expected = n * 3.14159265 * r * r;
  // Border effects bias downward; accept [0.75, 1.05] * expected.
  EXPECT_GT(g.average_degree(), 0.75 * expected);
  EXPECT_LT(g.average_degree(), 1.05 * expected);
}

TEST(GeneratorStats, GridDiametersScaleLinearly) {
  for (const std::uint32_t side : {4u, 8u, 16u}) {
    EXPECT_EQ(graph::exact_diameter(graph::make_grid(2, side)),
              2 * (side - 1));
    EXPECT_EQ(graph::exact_diameter(graph::make_grid(2, side, true)),
              2 * (side / 2));
  }
}

TEST(GeneratorStats, HypercubeConductanceIsOneOverD) {
  // The dimension cut realizes Phi = 1/d; the sweep estimate must land in
  // [1/d, sqrt(2 * 2/d)] (Cheeger band, degenerate eigenspace).
  for (const std::uint32_t d : {4u, 6u}) {
    const auto est = graph::estimate_conductance(graph::make_hypercube(d));
    EXPECT_GE(est.sweep_cut_upper, 1.0 / d - 1e-9);
    EXPECT_LE(est.sweep_cut_upper, std::sqrt(4.0 / d) + 1e-9);
  }
}

}  // namespace
}  // namespace cobra
