/// Statistical certification of the randomized generators: each family's
/// headline statistic matches its theory within tolerance. These go beyond
/// the structural invariants in graph/test_generators.cpp and the
/// bit-identity contract in gen/test_parallel_gen.cpp — they check the
/// DISTRIBUTIONS the experiments rely on, for both the legacy engine-based
/// generators and the spec-built chunk-parallel families.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "gen/registry.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/spectral.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra {
namespace {

using graph::Graph;

TEST(GeneratorStats, ErdosRenyiEdgeCountConcentrates) {
  // E[m] = C(n,2) p; repeat and compare the sample mean within 3 sigma.
  rng::Xoshiro256 gen(1);
  const std::uint32_t n = 400;
  const double p = 0.03;
  const double expected = n * (n - 1) / 2.0 * p;
  const double sigma = std::sqrt(n * (n - 1) / 2.0 * p * (1 - p));
  double total = 0.0;
  constexpr int kReps = 50;
  for (int rep = 0; rep < kReps; ++rep) {
    total += static_cast<double>(graph::make_erdos_renyi(gen, n, p).num_edges());
  }
  EXPECT_NEAR(total / kReps, expected, 3.0 * sigma / std::sqrt(kReps));
}

TEST(GeneratorStats, ErdosRenyiAboveThresholdIsConnected) {
  // p = 3 ln n / n is safely above the connectivity threshold.
  rng::Xoshiro256 gen(2);
  const std::uint32_t n = 300;
  const double p = 3.0 * std::log(n) / n;
  int connected = 0;
  for (int rep = 0; rep < 20; ++rep) {
    if (graph::is_connected(graph::make_erdos_renyi(gen, n, p))) ++connected;
  }
  EXPECT_GE(connected, 19);
}

TEST(GeneratorStats, RandomRegularIsExpanderWhp) {
  // Random 4-regular graphs have lazy spectral gap bounded away from 0.
  rng::Xoshiro256 gen(3);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = graph::make_random_regular(gen, 200, 4);
    ASSERT_TRUE(graph::is_connected(g));
    EXPECT_GT(graph::lazy_walk_spectrum(g).spectral_gap, 0.05) << rep;
  }
}

TEST(GeneratorStats, RandomRegularEdgeMarginalsUniformish) {
  // Each particular edge {0, 1} appears with probability ~ d/(n-1).
  rng::Xoshiro256 gen(4);
  const std::uint32_t n = 60, d = 4;
  int present = 0;
  constexpr int kReps = 3000;
  for (int rep = 0; rep < kReps; ++rep) {
    if (graph::make_random_regular(gen, n, d).has_edge(0, 1)) ++present;
  }
  const double expected = static_cast<double>(d) / (n - 1);
  EXPECT_NEAR(static_cast<double>(present) / kReps, expected, 0.015);
}

TEST(GeneratorStats, BarabasiAlbertDegreeTailIsPowerLaw) {
  // BA degree distribution has tail exponent ~3.
  rng::Xoshiro256 gen(5);
  const Graph g = graph::make_barabasi_albert(gen, 20000, 3);
  const double gamma = graph::hill_tail_exponent(g, 12);
  EXPECT_GT(gamma, 2.3);
  EXPECT_LT(gamma, 3.7);
}

TEST(GeneratorStats, ChungLuAverageDegreeMatchesWeights) {
  // Expected average degree for gamma = 2.5, min_deg = 3 is roughly
  // min_deg * (gamma-1)/(gamma-2) = 9 (weight-sequence mean); allow wide
  // tolerance for the cap and discreteness.
  rng::Xoshiro256 gen(6);
  const Graph g = graph::make_chung_lu_power_law(gen, 5000, 2.5, 3.0);
  EXPECT_GT(g.average_degree(), 4.0);
  EXPECT_LT(g.average_degree(), 14.0);
}

TEST(GeneratorStats, GeometricGraphDegreeMatchesDensity) {
  // E[deg] ~ n pi r^2 away from the border; measure the interior mean.
  rng::Xoshiro256 gen(7);
  const std::uint32_t n = 3000;
  const double r = 0.05;
  const Graph g = graph::make_random_geometric(gen, n, r);
  const double expected = n * 3.14159265 * r * r;
  // Border effects bias downward; accept [0.75, 1.05] * expected.
  EXPECT_GT(g.average_degree(), 0.75 * expected);
  EXPECT_LT(g.average_degree(), 1.05 * expected);
}

TEST(GeneratorStats, GridDiametersScaleLinearly) {
  for (const std::uint32_t side : {4u, 8u, 16u}) {
    EXPECT_EQ(graph::exact_diameter(graph::make_grid(2, side)),
              2 * (side - 1));
    EXPECT_EQ(graph::exact_diameter(graph::make_grid(2, side, true)),
              2 * (side / 2));
  }
}

// --- spec-built chunk-parallel families (src/gen) -------------------------

TEST(GeneratorStats, SpecGnpEdgeCountConcentrates) {
  // E[m] = C(n,2) p under the chunked skip-sampler; sample mean over
  // independent seeds within 3 sigma.
  const std::uint32_t n = 400;
  const double p = 0.03;
  const double expected = n * (n - 1) / 2.0 * p;
  const double sigma = std::sqrt(n * (n - 1) / 2.0 * p * (1 - p));
  double total = 0.0;
  constexpr int kReps = 50;
  for (int rep = 0; rep < kReps; ++rep) {
    total += static_cast<double>(
        gen::build_graph("gnp:n=400,p=0.03,seed=" + std::to_string(100 + rep))
            .num_edges());
  }
  EXPECT_NEAR(total / kReps, expected, 3.0 * sigma / std::sqrt(kReps));
}

TEST(GeneratorStats, SpecGnmDegreesMatchGnpAtTheSameDensity) {
  // G(n, m) at m = C(n,2) p is G(n, p) conditioned on the edge count: per
  // vertex, E[deg] = 2m/n exactly and Var[deg] ~ (n-1) q (1-q) with
  // q = m / C(n,2). Check the exact count, the per-seed mean degree, and
  // that the empirical degree variance is in the hypergeometric ballpark
  // (a permutation that clumped pairs would blow it up).
  const std::uint32_t n = 400;
  const std::uint64_t m = 2400;  // avg degree 12
  const double q = static_cast<double>(m) / (n * (n - 1) / 2.0);
  const double expected_var = (n - 1) * q * (1 - q);
  double var_total = 0.0;
  constexpr int kReps = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    const graph::Graph g =
        gen::build_graph("gnm:n=400,m=2400,seed=" + std::to_string(500 + rep));
    ASSERT_EQ(g.num_edges(), m);
    ASSERT_DOUBLE_EQ(g.average_degree(), 2.0 * m / n);
    double ss = 0.0;
    for (graph::Vertex v = 0; v < n; ++v) {
      const double d = g.degree(v) - 2.0 * m / n;
      ss += d * d;
    }
    var_total += ss / n;
  }
  EXPECT_NEAR(var_total / kReps, expected_var, 0.25 * expected_var);
}

TEST(GeneratorStats, SpecGnmAboveThresholdIsConnected) {
  // m = 2 n ln n edges is twice the connectivity threshold.
  const std::uint32_t n = 2000;
  const auto m = static_cast<std::uint64_t>(2.0 * n * std::log(n));
  const graph::Graph g =
      gen::build_graph("gnm:n=2000,m=" + std::to_string(m) + ",seed=9");
  EXPECT_EQ(g.num_edges(), m);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(GeneratorStats, SpecWattsStrogatzMeanDegreeAndSmallWorld) {
  // Rewiring preserves the edge count up to duplicate collisions, so mean
  // degree stays ~k; a small rewiring fraction already collapses the
  // diameter far below the beta = 0 lattice's n/(2*k/2) = n/k scaling.
  const graph::Graph lattice = gen::build_graph("ws:n=2000,k=6,beta=0,seed=1");
  const graph::Graph small_world =
      gen::build_graph("ws:n=2000,k=6,beta=0.1,seed=1");
  EXPECT_DOUBLE_EQ(lattice.average_degree(), 6.0);
  EXPECT_NEAR(small_world.average_degree(), 6.0, 0.1);
  ASSERT_TRUE(graph::is_connected(small_world));
  const auto lattice_diam = graph::double_sweep_diameter_lb(lattice);
  const auto sw_diam = graph::eccentricity(small_world, 0);
  EXPECT_GE(lattice_diam, 300u);  // ~ n/k = 333
  EXPECT_LT(sw_diam, lattice_diam / 5);
}

TEST(GeneratorStats, SpecBarabasiAlbertDegreeTailIsPowerLaw) {
  // The copy-model reproduces degree-proportional attachment, so the tail
  // exponent lands near the BA value of 3.
  const graph::Graph g = gen::build_graph("ba:n=20000,d=3,seed=5");
  const double gamma = graph::hill_tail_exponent(g, 12);
  EXPECT_GT(gamma, 2.2);
  EXPECT_LT(gamma, 4.0);
}

TEST(GeneratorStats, SpecRmatDegreesAreSkewed) {
  // With Graph500 parameters (a=.57) the expected degree of vertex 0 is
  // (2a)^levels / 2^levels * 2m / ... — we only certify the shape: the top
  // vertex holds a large multiple of the mean degree, and the degree
  // sequence is heavy-tailed enough that the Hill exponent is small.
  const graph::Graph g = gen::build_graph("rmat:n=2^13,deg=16,seed=9");
  EXPECT_GT(g.max_degree(), 10 * g.average_degree());
  const double gamma = graph::hill_tail_exponent(g, 64);
  EXPECT_LT(gamma, 3.0);
}

TEST(GeneratorStats, SpecRandomRegularIsExpanderWhp) {
  // The hashed-permutation configuration model must match the engine-based
  // one: connected, simple, spectral gap bounded away from 0.
  for (int rep = 0; rep < 10; ++rep) {
    const graph::Graph g =
        gen::build_graph("rreg:n=200,d=4,seed=" + std::to_string(200 + rep));
    ASSERT_TRUE(graph::is_connected(g)) << rep;
    EXPECT_GT(graph::lazy_walk_spectrum(g).spectral_gap, 0.05) << rep;
  }
}

TEST(GeneratorStats, SpecGeometricDegreeMatchesDensity) {
  // E[deg] ~ n pi r^2 away from the border — the avg_deg sugar solves for
  // exactly that radius, so the realized mean must land just below it.
  const graph::Graph g = gen::build_graph("geo:n=3000,avg_deg=12,seed=7");
  EXPECT_GT(g.average_degree(), 0.75 * 12.0);
  EXPECT_LT(g.average_degree(), 1.05 * 12.0);
}

TEST(GeneratorStats, HypercubeConductanceIsOneOverD) {
  // The dimension cut realizes Phi = 1/d; the sweep estimate must land in
  // [1/d, sqrt(2 * 2/d)] (Cheeger band, degenerate eigenspace).
  for (const std::uint32_t d : {4u, 6u}) {
    const auto est = graph::estimate_conductance(graph::make_hypercube(d));
    EXPECT_GE(est.sweep_cut_upper, 1.0 / d - 1e-9);
    EXPECT_LE(est.sweep_cut_upper, std::sqrt(4.0 / d) + 1e-9);
  }
}

}  // namespace
}  // namespace cobra
