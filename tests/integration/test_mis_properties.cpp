/// Property sweeps for the process zoo's removal-round processes: on every
/// graph family, the greedy MIS run must end independent AND maximal, and
/// its full round-by-round trajectory must be bit-identical across
/// {serial, 1, 2, 8}-thread pools and ForceSparse/ForceDense/Auto
/// representations. The Moser–Tardos resampler gets the same determinism
/// treatment over random k-SAT systems (its state space is a clause
/// dependency graph, not a graph family).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/greedy_mis.hpp"
#include "core/lll_resampler.hpp"
#include "gen/constraints.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace cobra {
namespace {

using core::Engine;
using core::FrontierMode;
using core::FrontierOptions;
using graph::Graph;
using graph::Vertex;

struct SweepCase {
  std::string name;
  std::function<Graph()> make_graph;
};

std::vector<SweepCase> families() {
  return {
      {"cycle", [] { return graph::make_cycle(240); }},
      {"grid2", [] { return graph::make_grid(2, 16); }},
      {"torus", [] { return graph::make_grid(2, 16, true); }},
      {"hypercube", [] { return graph::make_hypercube(8); }},
      {"complete", [] { return graph::make_complete(128); }},
      {"star", [] { return graph::make_star(200); }},
      {"tree", [] { return graph::make_kary_tree(2, 8); }},
      {"lollipop", [] { return graph::make_lollipop(60, 40); }},
      {"regular",
       [] {
         Engine gen(42);
         return graph::make_random_regular(gen, 512, 4);
       }},
      {"gnp",
       [] {
         Engine gen(43);
         return graph::make_erdos_renyi(gen, 400, 0.02);
       }},
  };
}

/// Run to extinction, recording (active set, mis) after every round.
std::vector<std::vector<Vertex>> mis_trajectory(const Graph& g,
                                                FrontierOptions opts,
                                                std::uint64_t seed) {
  core::GreedyMIS mis(g, opts);
  Engine gen(seed);
  std::vector<std::vector<Vertex>> trajectory;
  for (int guard = 0; guard < 100000 && !mis.done(); ++guard) {
    mis.step(gen);
    const auto active = mis.active();
    trajectory.emplace_back(active.begin(), active.end());
    trajectory.emplace_back(mis.mis().begin(), mis.mis().end());
  }
  return trajectory;
}

class MisProperties : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MisProperties, EndsIndependentAndMaximal) {
  const Graph g = GetParam().make_graph();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::GreedyMIS mis(g);
    Engine gen(seed);
    for (int guard = 0; guard < 100000 && !mis.done(); ++guard) mis.step(gen);
    ASSERT_TRUE(mis.done()) << GetParam().name;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      bool dominated = mis.in_mis(v);
      for (const Vertex u : g.neighbors(v)) {
        if (u == v) continue;
        if (mis.in_mis(u)) {
          ASSERT_FALSE(mis.in_mis(v))
              << GetParam().name << ": edge (" << v << "," << u << ") inside";
          dominated = true;
        }
      }
      ASSERT_TRUE(dominated)
          << GetParam().name << ": vertex " << v << " undominated";
    }
  }
}

TEST_P(MisProperties, BitIdenticalAcrossThreadsAndRepresentations) {
  const Graph g = GetParam().make_graph();
  FrontierOptions serial;
  serial.chunk_size = 64;
  serial.parallel_threshold = static_cast<std::size_t>(-1);
  serial.mode = FrontierMode::ForceSparse;
  const auto reference = mis_trajectory(g, serial, 7);
  ASSERT_FALSE(reference.empty());

  for (const FrontierMode mode :
       {FrontierMode::ForceSparse, FrontierMode::ForceDense,
        FrontierMode::Auto}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      par::ThreadPool pool(threads);
      FrontierOptions opts;
      opts.chunk_size = 64;
      opts.parallel_threshold = 1;
      opts.pool = &pool;
      opts.mode = mode;
      EXPECT_EQ(mis_trajectory(g, opts, 7), reference)
          << GetParam().name << " threads=" << threads
          << " mode=" << static_cast<int>(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, MisProperties,
                         ::testing::ValuesIn(families()),
                         [](const ::testing::TestParamInfo<SweepCase>& tpi) {
                           return tpi.param.name;
                         });

/// LLL determinism twin: full trajectory (violated sets + final
/// assignment) identical across pools and representations.
std::vector<std::vector<Vertex>> lll_trajectory(
    const gen::ClauseSystem& sys, const Graph& deps, FrontierOptions opts,
    std::uint64_t seed, std::vector<std::uint8_t>* assignment_out) {
  core::LLLResampler mt(sys, deps, /*init_seed=*/seed, opts);
  Engine gen(seed ^ 0xD00D);
  std::vector<std::vector<Vertex>> trajectory;
  for (int guard = 0; guard < 200000 && !mt.satisfied(); ++guard) {
    mt.step(gen);
    const auto active = mt.active();
    trajectory.emplace_back(active.begin(), active.end());
  }
  EXPECT_TRUE(mt.satisfied());
  if (assignment_out != nullptr) {
    assignment_out->assign(mt.assignment().begin(), mt.assignment().end());
  }
  return trajectory;
}

TEST(LLLProperties, TerminatesSatisfiedOnEveryPinnedSystem) {
  for (const std::uint32_t n : {128u, 512u, 2048u}) {
    const auto sys = gen::random_ksat(n, n + n / 2, 3, 0xF00 + n);
    const Graph deps = gen::dependency_graph(sys);
    std::vector<std::uint8_t> assignment;
    lll_trajectory(sys, deps, {}, /*seed=*/3, &assignment);
    EXPECT_EQ(sys.count_violated(assignment), 0u) << "n=" << n;
  }
}

TEST(LLLProperties, BitIdenticalAcrossThreadsAndRepresentations) {
  const auto sys = gen::random_ksat(768, 1152, 3, 0xBEE);
  const Graph deps = gen::dependency_graph(sys);
  FrontierOptions serial;
  serial.chunk_size = 64;
  serial.parallel_threshold = static_cast<std::size_t>(-1);
  serial.mode = FrontierMode::ForceSparse;
  std::vector<std::uint8_t> ref_assignment;
  const auto reference = lll_trajectory(sys, deps, serial, 5, &ref_assignment);
  ASSERT_FALSE(reference.empty());

  for (const FrontierMode mode :
       {FrontierMode::ForceSparse, FrontierMode::ForceDense,
        FrontierMode::Auto}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      par::ThreadPool pool(threads);
      FrontierOptions opts;
      opts.chunk_size = 64;
      opts.parallel_threshold = 1;
      opts.pool = &pool;
      opts.mode = mode;
      std::vector<std::uint8_t> assignment;
      EXPECT_EQ(lll_trajectory(sys, deps, opts, 5, &assignment), reference)
          << "threads=" << threads << " mode=" << static_cast<int>(mode);
      EXPECT_EQ(assignment, ref_assignment);
    }
  }
}

}  // namespace
}  // namespace cobra
