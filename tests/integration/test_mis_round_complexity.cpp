/// Statistical certification of the greedy MIS round complexity: Fischer &
/// Noever (SODA 2018) pin parallel randomized greedy MIS at Theta(log n)
/// rounds. Over gnp and rmat sweeps the mean rounds-to-extinction must
/// fit a polylog curve with a healthy R^2 and an exponent far from linear
/// growth. Runs in the `stats` ctest lane; writes mis_round_fit.json next
/// to the test binary so CI can archive the fitted exponents alongside the
/// bench baselines.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/greedy_mis.hpp"
#include "gen/registry.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace cobra {
namespace {

using core::Engine;

stats::Summary rounds_summary(const graph::Graph& g, std::uint64_t base_seed,
                              std::uint32_t trials) {
  std::vector<double> rounds;
  core::GreedyMIS mis(g);
  for (std::uint32_t t = 0; t < trials; ++t) {
    mis.reset();
    Engine gen(rng::derive_seed(base_seed, t));
    for (int guard = 0; guard < 100000 && !mis.done(); ++guard) mis.step(gen);
    EXPECT_TRUE(mis.done());
    rounds.push_back(static_cast<double>(mis.round()));
  }
  return stats::summarize(rounds);
}

struct SweepResult {
  std::vector<double> ns, means, medians;
  stats::PowerLawFit polylog;
  stats::PowerLawFit power;
};

SweepResult sweep(const std::string& key, const std::string& deg_key,
                  std::uint32_t lo_pow, std::uint32_t hi_pow,
                  std::uint32_t trials, std::uint64_t base_seed) {
  SweepResult r;
  for (std::uint32_t p = lo_pow; p <= hi_pow; ++p) {
    const auto n = std::uint32_t{1} << p;
    const std::string spec = key + ":n=" + std::to_string(n) + "," + deg_key +
                             "=8,seed=" + std::to_string(900 + p);
    const graph::Graph g = gen::build_graph(spec);
    const auto s = rounds_summary(g, rng::derive_seed(base_seed, p), trials);
    r.ns.push_back(static_cast<double>(n));
    r.means.push_back(s.mean);
    r.medians.push_back(s.median);
  }
  // Fit the MEAN rounds: medians of an integer-valued observable move in
  // unit jumps across a range this narrow (3..6 rounds), which wrecks any
  // least-squares fit; the mean varies smoothly and tracks the same
  // Theta(log n) law. Medians still go into the JSON artifact.
  r.polylog = stats::fit_polylog(r.ns, r.means);
  r.power = stats::fit_power_law(r.ns, r.means);
  return r;
}

void expect_logarithmic(const SweepResult& r, const std::string& family) {
  // Rounds grow: the largest size needs strictly more rounds than the
  // smallest (a constant would "fit" polylog perfectly with exponent 0).
  EXPECT_GT(r.means.back(), r.means.front()) << family;
  // The polylog model explains the growth...
  EXPECT_GT(r.polylog.r_squared, 0.9) << family;
  // ...with an exponent in the Theta(log n) neighborhood (generous window:
  // means over modest trial counts are noisy at these sizes).
  EXPECT_GT(r.polylog.exponent, 0.2) << family;
  EXPECT_LT(r.polylog.exponent, 2.5) << family;
  // And the growth is decisively sublinear in n — a power-law fit through
  // the same points stays far below even n^(1/3).
  EXPECT_LT(r.power.exponent, 0.35) << family;
}

void append_json(std::string& out, const std::string& family,
                 const SweepResult& r) {
  out += "  \"" + family + "\": {\"n\": [";
  for (std::size_t i = 0; i < r.ns.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(static_cast<std::uint64_t>(r.ns[i]));
  }
  out += "], \"mean_rounds\": [";
  for (std::size_t i = 0; i < r.means.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(r.means[i]);
  }
  out += "], \"median_rounds\": [";
  for (std::size_t i = 0; i < r.medians.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(r.medians[i]);
  }
  out += "], \"polylog_exponent\": " + std::to_string(r.polylog.exponent) +
         ", \"polylog_r_squared\": " + std::to_string(r.polylog.r_squared) +
         ", \"power_exponent\": " + std::to_string(r.power.exponent) + "}";
}

TEST(MisRoundComplexity, MedianRoundsFitOLogNOnGnpAndRmat) {
  // gnp at avg_deg 8 over n = 2^10 .. 2^16; rmat (power-law, skewed) over
  // n = 2^10 .. 2^14 — the heavier tail makes big rmat builds slower and
  // the fit needs no more points.
  const SweepResult gnp = sweep("gnp", "avg_deg", 10, 16, 24, 0x515A);
  const SweepResult rmat = sweep("rmat", "deg", 10, 14, 16, 0x515B);

  expect_logarithmic(gnp, "gnp");
  expect_logarithmic(rmat, "rmat");

  // Archive the fits for CI (cwd is the test's binary dir).
  std::string json = "{\n";
  append_json(json, "gnp", gnp);
  json += ",\n";
  append_json(json, "rmat", rmat);
  json += "\n}\n";
  std::ofstream out("mis_round_fit.json");
  ASSERT_TRUE(out.good());
  out << json;
  ASSERT_TRUE(out.good());
}

}  // namespace
}  // namespace cobra
