/// Parameterized property sweeps: invariants every process must satisfy on
/// every graph family. These are the library's property-based tests — each
/// (process, family) cell checks validity of active sets, eventual
/// coverage, and determinism.

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "core/gossip.hpp"
#include "core/parallel_walks.hpp"
#include "core/random_walk.hpp"
#include "core/walt.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace cobra {
namespace {

using core::Engine;
using graph::Graph;
using graph::Vertex;

struct SweepCase {
  std::string name;
  std::function<Graph()> make_graph;
};

std::vector<SweepCase> families() {
  return {
      {"cycle", [] { return graph::make_cycle(24); }},
      {"grid2", [] { return graph::make_grid(2, 5); }},
      {"grid3", [] { return graph::make_grid(3, 3); }},
      {"torus", [] { return graph::make_grid(2, 5, true); }},
      {"hypercube", [] { return graph::make_hypercube(5); }},
      {"complete", [] { return graph::make_complete(16); }},
      {"star", [] { return graph::make_star(16); }},
      {"tree", [] { return graph::make_kary_tree(2, 5); }},
      {"lollipop", [] { return graph::make_lollipop(10, 6); }},
      {"regular",
       [] {
         Engine gen(42);
         return graph::make_random_regular(gen, 48, 4);
       }},
  };
}

class ProcessProperties : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProcessProperties, CobraActiveSetsValidAndCoverHappens) {
  const Graph g = GetParam().make_graph();
  Engine gen(1);
  core::CobraWalk walk(g, 0, 2);
  core::CoverageTracker tracker(g.num_vertices());
  tracker.absorb(walk.active());
  for (int t = 0; t < 100000 && !tracker.complete(); ++t) {
    walk.step(gen);
    for (const Vertex v : walk.active()) ASSERT_LT(v, g.num_vertices());
    const std::set<Vertex> unique(walk.active().begin(), walk.active().end());
    ASSERT_EQ(unique.size(), walk.active().size());
    tracker.absorb(walk.active());
  }
  EXPECT_TRUE(tracker.complete()) << GetParam().name;
}

TEST_P(ProcessProperties, RandomWalkEventuallyCovers) {
  const Graph g = GetParam().make_graph();
  Engine gen(2);
  const core::CoverResult r = core::random_walk_cover(g, 0, gen);
  EXPECT_TRUE(r.covered) << GetParam().name;
}

TEST_P(ProcessProperties, GossipCompletesAndIsMonotone) {
  const Graph g = GetParam().make_graph();
  Engine gen(3);
  core::Gossip gossip(g, 0);
  std::uint32_t prev = gossip.informed_count();
  for (int t = 0; t < 1000000 && !gossip.complete(); ++t) {
    gossip.step(gen);
    ASSERT_GE(gossip.informed_count(), prev);
    prev = gossip.informed_count();
  }
  EXPECT_TRUE(gossip.complete()) << GetParam().name;
}

TEST_P(ProcessProperties, WaltConservesPebblesAndCovers) {
  const Graph g = GetParam().make_graph();
  Engine gen(4);
  const std::uint32_t pebbles = std::max(2u, g.num_vertices() / 2);
  core::Walt walt(g, 0, pebbles, true);
  core::CoverageTracker tracker(g.num_vertices());
  tracker.absorb(walt.active());
  for (int t = 0; t < 200000 && !tracker.complete(); ++t) {
    walt.step(gen);
    ASSERT_EQ(walt.pebbles().size(), pebbles);
    tracker.absorb(walt.active());
  }
  EXPECT_TRUE(tracker.complete()) << GetParam().name;
}

TEST_P(ProcessProperties, CobraDeterministicAcrossRuns) {
  const Graph g = GetParam().make_graph();
  Engine g1(55), g2(55);
  core::CobraWalk a(g, 0, 2), b(g, 0, 2);
  for (int t = 0; t < 64; ++t) {
    a.step(g1);
    b.step(g2);
    ASSERT_EQ(std::vector<Vertex>(a.active().begin(), a.active().end()),
              std::vector<Vertex>(b.active().begin(), b.active().end()));
  }
}

TEST_P(ProcessProperties, BranchingMonotonicityOfCoverTime) {
  // Averaged over trials, k=3 covers no slower than k=2 (more samples per
  // round can only help coverage in distribution).
  const Graph g = GetParam().make_graph();
  Engine gen(6);
  double k2 = 0, k3 = 0;
  constexpr int kTrials = 25;
  for (int t = 0; t < kTrials; ++t) {
    k2 += static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
    k3 += static_cast<double>(core::cobra_cover(g, 0, 3, gen).steps);
  }
  EXPECT_LT(k3, 1.5 * k2) << GetParam().name;  // slack for sampling noise
}

TEST_P(ProcessProperties, ParallelWalksMoreWalkersNoSlower) {
  const Graph g = GetParam().make_graph();
  Engine gen(7);
  double w1 = 0, w8 = 0;
  constexpr int kTrials = 15;
  for (int t = 0; t < kTrials; ++t) {
    w1 += static_cast<double>(core::parallel_walks_cover(g, 0, 1, gen).steps);
    w8 += static_cast<double>(core::parallel_walks_cover(g, 0, 8, gen).steps);
  }
  EXPECT_LT(w8, 1.2 * w1) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ProcessProperties,
                         ::testing::ValuesIn(families()),
                         [](const ::testing::TestParamInfo<SweepCase>& tpi) {
                           return tpi.param.name;
                         });

}  // namespace
}  // namespace cobra
