/// Small-n smoke checks of the paper's theorems — the full-scale versions
/// live in bench/; these integration tests pin the *direction* of every
/// claim at sizes cheap enough for CI.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "core/hitting_time.hpp"
#include "core/walt.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace cobra {
namespace {

using core::CoverResult;
using core::Engine;
using graph::Graph;
using graph::Vertex;

double mean_cobra_cover(const Graph& g, Vertex start, int trials,
                        std::uint64_t seed) {
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = static_cast<std::uint32_t>(trials);
  const auto results =
      par::run_trials(par::global_pool(), opts,
                      [&](Engine& gen, std::uint32_t) {
                        return static_cast<double>(
                            core::cobra_cover(g, start, 2, gen).steps);
                      });
  return stats::mean_of(results);
}

// E1 (Theorem 3): 2-cobra cover on the 1-D grid scales ~linearly in n
// (exponent well below the random walk's 2).
TEST(TheoremSmoke, GridCoverGrowsSubquadratically) {
  std::vector<double> ns, covers;
  for (const std::uint32_t side : {16u, 32u, 64u, 128u}) {
    const Graph g = graph::make_path(side);
    ns.push_back(side);
    covers.push_back(mean_cobra_cover(g, 0, 30, 101));
  }
  const auto fit = stats::fit_power_law(ns, covers);
  EXPECT_LT(fit.exponent, 1.5) << "1-D grid cobra cover should be ~linear";
  EXPECT_GT(fit.exponent, 0.5);
}

// E1 contrast: the simple random walk on the path is ~quadratic.
TEST(TheoremSmoke, PathRandomWalkIsQuadratic) {
  par::MonteCarloOptions opts;
  opts.trials = 30;
  std::vector<double> ns, covers;
  for (const std::uint32_t side : {16u, 32u, 64u}) {
    const Graph g = graph::make_path(side);
    opts.base_seed = 200 + side;
    const auto results = par::run_trials(
        par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
          return static_cast<double>(core::random_walk_cover(g, 0, gen).steps);
        });
    ns.push_back(side);
    covers.push_back(stats::mean_of(results));
  }
  const auto fit = stats::fit_power_law(ns, covers);
  EXPECT_GT(fit.exponent, 1.6);
}

// E2/E3 (Theorem 8 / Corollary 9): on random regular (expander) graphs the
// cobra cover time is polylogarithmic — doubling n adds little.
TEST(TheoremSmoke, ExpanderCoverIsPolylog) {
  Engine graph_gen(7);
  const Graph small = graph::make_random_regular(graph_gen, 128, 6);
  const Graph large = graph::make_random_regular(graph_gen, 1024, 6);
  const double cover_small = mean_cobra_cover(small, 0, 30, 301);
  const double cover_large = mean_cobra_cover(large, 0, 30, 302);
  // 8x the vertices must cost far less than 8x the rounds; polylog predicts
  // a factor of (log 1024 / log 128)^2 ~ 2.
  EXPECT_LT(cover_large, 4.0 * cover_small);
}

// E5 (Theorem 20): on the lollipop graph the cobra walk beats the random
// walk by a large factor (RW is Θ(n^3) there).
TEST(TheoremSmoke, LollipopCobraBeatsRandomWalk) {
  const Graph g = graph::make_lollipop(40, 20);
  par::MonteCarloOptions opts;
  opts.trials = 20;
  opts.base_seed = 401;
  const auto cobra = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
      });
  opts.base_seed = 402;
  const auto rw = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(core::random_walk_cover(g, 0, gen).steps);
      });
  EXPECT_LT(stats::mean_of(cobra) * 5, stats::mean_of(rw));
}

// E6 (Theorem 1): cover time is bounded by O(hmax log n); check the ratio
// cover / (hmax ln n) is a small constant.
TEST(TheoremSmoke, MatthewsBoundHolds) {
  const Graph g = graph::make_grid(2, 6);  // n = 36
  Engine gen(11);
  const core::HmaxEstimate hmax = core::estimate_cobra_hmax(g, 2, gen, 40, 10);
  ASSERT_TRUE(hmax.all_hit);
  const double cover = mean_cobra_cover(g, 0, 40, 501);
  const double bound = hmax.hmax * std::log(g.num_vertices());
  EXPECT_LT(cover, 3.0 * bound);
}

// E7 (Lemma 10): Walt's cover time stochastically dominates the cobra
// walk's when started from the same vertex with delta*n pebbles.
TEST(TheoremSmoke, WaltDominatesCobra) {
  Engine graph_gen(13);
  const Graph g = graph::make_random_regular(graph_gen, 64, 4);
  par::MonteCarloOptions opts;
  opts.trials = 40;
  opts.base_seed = 601;
  const auto cobra = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
      });
  opts.base_seed = 602;
  const auto walt = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(
            core::walt_cover(g, 0, g.num_vertices() / 2, true, gen).steps);
      });
  // Dominance is on distributions; compare means with slack for noise.
  EXPECT_GT(stats::mean_of(walt), 0.8 * stats::mean_of(cobra));
}

// E9: 2-cobra cover on k-ary trees is proportional to the diameter (k=2,3):
// growing the tree by a level adds a roughly constant increment per level.
TEST(TheoremSmoke, TreeCoverTracksDiameter) {
  for (const std::uint32_t arity : {2u, 3u}) {
    std::vector<double> diameters, covers;
    for (const std::uint32_t levels : {4u, 5u, 6u}) {
      const Graph g = graph::make_kary_tree(arity, levels);
      diameters.push_back(2.0 * (levels - 1));
      covers.push_back(mean_cobra_cover(g, 0, 25, 700 + levels));
    }
    // cover / diameter should stay within a small band as the tree grows.
    const double r0 = covers[0] / diameters[0];
    const double r2 = covers[2] / diameters[2];
    EXPECT_LT(r2, 3.0 * r0) << "arity " << arity;
  }
}

// E10 flavor: on a bounded-degree expander, 2-cobra cover is within a
// log-factor band of push gossip (both polylog on expanders).
TEST(TheoremSmoke, CobraComparableToGossipOnExpander) {
  Engine graph_gen(17);
  const Graph g = graph::make_random_regular(graph_gen, 256, 6);
  par::MonteCarloOptions opts;
  opts.trials = 30;
  opts.base_seed = 801;
  const auto cobra = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
      });
  opts.base_seed = 802;
  const auto gossip = par::run_trials(
      par::global_pool(), opts, [&](Engine& gen, std::uint32_t) {
        return static_cast<double>(core::gossip_push_cover(g, 0, gen).steps);
      });
  const double ratio = stats::mean_of(cobra) / stats::mean_of(gossip);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 20.0);
}

// E4 (Theorem 15) direction: cobra hitting time on the cycle (δ = 2) grows
// subquadratically (bound n^{1.5}), while RW hitting is ~n^2.
TEST(TheoremSmoke, CycleHittingSubquadratic) {
  std::vector<double> ns, hits;
  par::MonteCarloOptions opts;
  opts.trials = 30;
  for (const std::uint32_t n : {16u, 32u, 64u}) {
    const Graph g = graph::make_cycle(n);
    opts.base_seed = 900 + n;
    const auto results = par::run_trials(
        par::global_pool(), opts, [&, n](Engine& gen, std::uint32_t) {
          return static_cast<double>(
              core::cobra_hit(g, 0, n / 2, 2, gen).steps);
        });
    ns.push_back(n);
    hits.push_back(stats::mean_of(results));
  }
  const auto fit = stats::fit_power_law(ns, hits);
  EXPECT_LT(fit.exponent, 1.8);
}

}  // namespace
}  // namespace cobra
