#include "io/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace cobra::io {
namespace {

Args parse(std::vector<const char*> argv,
           const std::vector<std::string>& allowed = {}) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data(), allowed);
}

TEST(Args, EqualsSyntax) {
  const Args args = parse({"--n=128", "--rate=0.5"});
  EXPECT_EQ(args.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Args, SpaceSyntax) {
  const Args args = parse({"--n", "42", "--name", "grid"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_EQ(args.get("name", ""), "grid");
}

TEST(Args, BareFlagIsTrue) {
  const Args args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Args, DefaultsWhenMissing) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("d", 1.5), 1.5);
  EXPECT_FALSE(args.get_bool("b", false));
  EXPECT_FALSE(args.has("n"));
}

TEST(Args, Positional) {
  const Args args = parse({"first", "--n=1", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(Args, UnknownFlagRejectedWhenAllowlisted) {
  EXPECT_THROW(parse({"--typo=1"}, {"n", "seed"}), std::invalid_argument);
  EXPECT_NO_THROW(parse({"--n=1"}, {"n", "seed"}));
}

TEST(Args, BadIntegerThrows) {
  const Args args = parse({"--n=12x"});
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
}

TEST(Args, BadDoubleThrows) {
  const Args args = parse({"--d=1.5zz"});
  EXPECT_THROW((void)args.get_double("d", 0.0), std::invalid_argument);
}

TEST(Args, NegativeUintThrows) {
  const Args args = parse({"--n=-3"});
  EXPECT_THROW((void)args.get_uint("n", 0), std::invalid_argument);
  EXPECT_EQ(args.get_int("n", 0), -3);
}

TEST(Args, BoolVariants) {
  EXPECT_TRUE(parse({"--f=yes"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f=1"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f=on"}).get_bool("f", false));
  EXPECT_FALSE(parse({"--f=no"}).get_bool("f", true));
  EXPECT_FALSE(parse({"--f=0"}).get_bool("f", true));
  EXPECT_THROW((void)parse({"--f=maybe"}).get_bool("f", false),
               std::invalid_argument);
}

TEST(Args, NegativeNumberAsValueAfterSpace) {
  // "--n -3": -3 does not start with --, so it is consumed as n's value.
  const Args args = parse({"--n", "-3"});
  EXPECT_EQ(args.get_int("n", 0), -3);
}

TEST(Args, LastOccurrenceWins) {
  const Args args = parse({"--n=1", "--n=2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

}  // namespace
}  // namespace cobra::io
