#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cobra::io {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "cobra_csv_test.csv";
};

TEST_F(CsvTest, WritesRows) {
  {
    CsvWriter w(path_);
    w.write_header({"n", "cover"});
    w.write_row({"8", "12.5"});
  }
  EXPECT_EQ(slurp(path_), "n,cover\n8,12.5\n");
}

TEST_F(CsvTest, WritesDoubleValues) {
  {
    CsvWriter w(path_);
    w.write_values({1.5, 2.0, 3.25});
  }
  EXPECT_EQ(slurp(path_), "1.5,2,3.25\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_);
    w.write_row({"plain", "has,comma", "has\"quote", "has\nnewline"});
  }
  EXPECT_EQ(slurp(path_),
            "plain,\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvEscape, Rules) {
  EXPECT_EQ(CsvWriter::escape("abc"), "abc");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::escape(""), "");
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
}

TEST(Csv, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace cobra::io
