#include "io/graph_flag.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "gen/registry.hpp"

namespace cobra::io {
namespace {

Args make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench");
  return Args(static_cast<int>(argv.size()), argv.data(), {"graph", "other"});
}

TEST(GraphFlag, BuildsSpecFromFlag) {
  const Args args = make_args({"--graph", "ring:n=12"});
  const graph::Graph g = graph_from_args(args, "ring:n=99");
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(graph_spec_from_args(args, "ring:n=99"), "ring:n=12");
}

TEST(GraphFlag, FallsBackWhenAbsent) {
  const Args args = make_args({"--other", "1"});
  const graph::Graph g = graph_from_args(args, "hypercube:dims=4");
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(graph_spec_from_args(args, "hypercube:dims=4"),
            "hypercube:dims=4");
}

TEST(GraphFlag, BadSpecThrowsWithGrammarTable) {
  const Args args = make_args({"--graph", "nope:n=4"});
  try {
    (void)graph_from_args(args, "");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown family"), std::string::npos);
    // Usage text rides along so a typo'd sweep fails self-documentingly.
    EXPECT_NE(what.find("gnp:n=<N>"), std::string::npos);
  }
}

TEST(GraphFlag, MatchesDirectRegistryConstruction) {
  const Args args = make_args({"--graph", "rreg:n=100,d=4,seed=3"});
  const graph::Graph via_flag = graph_from_args(args, "");
  const graph::Graph direct = gen::build_graph("rreg:n=100,d=4,seed=3");
  EXPECT_EQ(via_flag.offsets(), direct.offsets());
  EXPECT_EQ(via_flag.targets(), direct.targets());
}

}  // namespace
}  // namespace cobra::io
