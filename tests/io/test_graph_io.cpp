#include "io/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace cobra::io {
namespace {

TEST(GraphIo, ReadsBasicFormat) {
  std::istringstream in(
      "# a triangle\n"
      "3\n"
      "0 1\n"
      "\n"
      "1 2\n"
      "# middle comment\n"
      "2 0\n");
  const graph::Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(GraphIo, RoundTripsGeneratedGraphs) {
  rng::Xoshiro256 gen(1);
  for (const graph::Graph& g :
       {graph::make_grid(2, 5), graph::make_hypercube(4),
        graph::make_random_regular(gen, 30, 4), graph::make_star(9)}) {
    std::stringstream buffer;
    write_edge_list(buffer, g);
    const graph::Graph back = read_edge_list(buffer);
    EXPECT_EQ(back.num_vertices(), g.num_vertices());
    EXPECT_EQ(back.num_edges(), g.num_edges());
    EXPECT_EQ(back.targets(), g.targets());  // CSR is canonical (sorted)
  }
}

TEST(GraphIo, RoundTripsSelfLoopsAndParallelEdges) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 0);
  b.add_edge(1, 2);
  b.add_edge(1, 2);
  const graph::Graph g = b.build();
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const graph::Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_edges(), 3u);
  EXPECT_EQ(back.degree(0), 2u);  // self-loop counts twice
  EXPECT_EQ(back.degree(1), 2u);
}

TEST(GraphIo, EmptyGraph) {
  std::istringstream in("0\n");
  const graph::Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("abc\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3 extra\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3\n0\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3\n0 1 2\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3\n0 7\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::istringstream in("3\n-1 0\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
}

TEST(GraphIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "cobra_graph_io_test.txt";
  const graph::Graph g = graph::make_cycle(12);
  save_edge_list(path, g);
  const graph::Graph back = load_edge_list(path);
  EXPECT_EQ(back.num_edges(), 12u);
  EXPECT_TRUE(graph::is_connected(back));
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent_dir_xyz/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace cobra::io
