#include "io/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace cobra::io {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"n", "cover"});
  t.add_row({"8", "12"});
  t.add_row({"128", "412"});
  const std::string out = t.render();
  EXPECT_NE(out.find("  n   cover"), std::string::npos);
  EXPECT_NE(out.find("---   -----"), std::string::npos);
  EXPECT_NE(out.find("  8      12"), std::string::npos);
  EXPECT_NE(out.find("128     412"), std::string::npos);
}

TEST(Table, LeftAlignment) {
  Table t({"name", "value"});
  t.set_align(0, Align::Left);
  t.add_row({"ab", "1"});
  t.add_row({"abcd", "2"});
  const std::string out = t.render();
  // pad("ab", 4, Left) + "   " + pad("1", 5, Right) = "ab" + 9 spaces + "1"
  EXPECT_NE(out.find("ab         1"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellAccess) {
  Table t({"x"});
  t.add_row({"hello"});
  EXPECT_EQ(t.cell(0, 0), "hello");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 1u);
  EXPECT_THROW((void)t.cell(1, 0), std::out_of_range);
}

TEST(Table, FmtFixedPoint) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, FmtInt) {
  EXPECT_EQ(Table::fmt_int(0), "0");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
  EXPECT_EQ(Table::fmt_int(1234567890123LL), "1234567890123");
}

TEST(Table, FmtSci) {
  const std::string s = Table::fmt_sci(12345.678, 2);
  EXPECT_NE(s.find("1.23e"), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  Table t({"n", "label"});
  t.set_align(1, Align::Left);
  t.add_row({"1", "x"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| n | label |"), std::string::npos);
  EXPECT_NE(md.find("| ---: | :--- |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | x |"), std::string::npos);
}

TEST(Table, StreamOperator) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

}  // namespace
}  // namespace cobra::io
