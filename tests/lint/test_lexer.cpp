#include "lint/lexer.hpp"

#include <gtest/gtest.h>

#include <string>

// The scanner's one job: CODE and NON-CODE must never mix. Every rule's
// false-positive immunity (a banned identifier quoted in a string or
// discussed in a comment) reduces to these properties.

namespace {

using cobra::lint::LexedFile;
using cobra::lint::find_word;
using cobra::lint::is_word_at;
using cobra::lint::lex;

TEST(LintLexer, LineCommentBlankedAndCaptured) {
  const LexedFile f = lex("int x = 1;  // don't call rand() here\nint y;\n");
  EXPECT_EQ(find_word(f.code[0], "rand"), std::string::npos);
  EXPECT_NE(f.comment[0].find("rand()"), std::string::npos);
  EXPECT_NE(find_word(f.code[0], "x"), std::string::npos);
  EXPECT_NE(find_word(f.code[1], "y"), std::string::npos);
}

TEST(LintLexer, BlockCommentSpansLines) {
  const LexedFile f = lex("a /* rand()\n time() */ b;\n");
  EXPECT_EQ(find_word(f.code[0], "rand"), std::string::npos);
  EXPECT_EQ(find_word(f.code[1], "time"), std::string::npos);
  EXPECT_NE(find_word(f.code[0], "a"), std::string::npos);
  EXPECT_NE(find_word(f.code[1], "b"), std::string::npos);
  EXPECT_NE(f.comment[0].find("rand()"), std::string::npos);
  EXPECT_NE(f.comment[1].find("time()"), std::string::npos);
}

TEST(LintLexer, StringBodyBlankedColumnsPreserved) {
  const std::string src = "call(\"std::rand()\");\nnext;\n";
  const LexedFile f = lex(src);
  EXPECT_EQ(find_word(f.code[0], "rand"), std::string::npos);
  // Columns are preserved: the code view of a line has the same length.
  EXPECT_EQ(f.code[0].size(), std::string("call(\"std::rand()\");").size());
  // Delimiters survive so string boundaries stay visible.
  EXPECT_NE(f.code[0].find('"'), std::string::npos);
}

TEST(LintLexer, EscapedQuoteDoesNotEndString) {
  const LexedFile f = lex("s = \"a\\\"rand()\"; int k;\n");
  EXPECT_EQ(find_word(f.code[0], "rand"), std::string::npos);
  EXPECT_NE(find_word(f.code[0], "k"), std::string::npos);
}

TEST(LintLexer, RawStringSpansLines) {
  const LexedFile f =
      lex("auto s = R\"(\n std::rand();\n time(nullptr);\n)\"; int z;\n");
  EXPECT_EQ(find_word(f.code[1], "rand"), std::string::npos);
  EXPECT_EQ(find_word(f.code[2], "time"), std::string::npos);
  EXPECT_NE(find_word(f.code[3], "z"), std::string::npos);
}

TEST(LintLexer, RawStringCustomDelimiter) {
  const LexedFile f =
      lex("auto s = R\"xy( rand(); )\" still string )xy\"; int q;\n");
  EXPECT_EQ(find_word(f.code[0], "rand"), std::string::npos);
  EXPECT_EQ(find_word(f.code[0], "string"), std::string::npos);
  EXPECT_NE(find_word(f.code[0], "q"), std::string::npos);
}

TEST(LintLexer, CharLiteralAndDigitSeparator) {
  // The ' in 1'000'000 is a digit separator, not a char literal opener —
  // mis-lexing it would swallow the rest of the line as a "literal".
  const LexedFile f = lex("int n = 1'000'000; char c = 'r'; rand();\n");
  EXPECT_NE(find_word(f.code[0], "rand"), std::string::npos);
  EXPECT_NE(find_word(f.code[0], "n"), std::string::npos);
}

TEST(LintLexer, CommentInsideStringIsString) {
  const LexedFile f = lex("s = \"// not a comment\"; rand();\n");
  EXPECT_TRUE(f.comment[0].empty());
  EXPECT_NE(find_word(f.code[0], "rand"), std::string::npos);
}

TEST(LintLexer, WordBoundaries) {
  EXPECT_TRUE(is_word_at("rand()", 0, "rand"));
  EXPECT_FALSE(is_word_at("srand()", 1, "rand"));     // prefixed
  EXPECT_FALSE(is_word_at("rand_r()", 0, "rand"));    // suffixed
  EXPECT_TRUE(is_word_at("std::rand()", 5, "rand"));  // qualified
  EXPECT_EQ(find_word("a brand new rand", "rand"), 12u);
}

TEST(LintLexer, LineCountMatchesSource) {
  const LexedFile f = lex("a\nb\nc");
  EXPECT_EQ(f.line_count(), 3u);
  const LexedFile g = lex("");
  EXPECT_EQ(g.line_count(), 1u);
}

}  // namespace
