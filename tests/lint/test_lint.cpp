#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

// Driver-level behavior: annotation suppression (same line, block above,
// family prefix, mandatory justification), baseline multiset semantics,
// and the JSON/table renderers the CI lane consumes.

namespace {

using cobra::lint::apply_baseline;
using cobra::lint::BaselineSplit;
using cobra::lint::Finding;
using cobra::lint::lint_text;
using cobra::lint::render_baseline;
using cobra::lint::render_findings_json;
using cobra::lint::render_findings_table;

std::size_t count_rule(const std::vector<Finding>& fs,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ------------------------------------------------------- suppression ----

TEST(LintDriver, SameLineAnnotationSuppresses) {
  const auto fs = lint_text(
      "src/core/x.cpp",
      "std::unordered_map<int, int> m;  "
      "// cobra-lint: allow(D2-unordered) membership cache, never iterated\n");
  EXPECT_EQ(count_rule(fs, "D2-unordered"), 0u);
  EXPECT_EQ(count_rule(fs, "lint-annotation"), 0u);
}

TEST(LintDriver, BlockAboveSuppresses) {
  const auto fs = lint_text(
      "src/core/x.cpp",
      "// cobra-lint: allow(D2-unordered) membership cache; the wrapping\n"
      "// justification spills onto a second comment line.\n"
      "std::unordered_map<int, int> m;\n");
  EXPECT_EQ(count_rule(fs, "D2-unordered"), 0u);
}

TEST(LintDriver, FamilyPrefixSuppresses) {
  const auto fs = lint_text(
      "src/core/x.cpp",
      "// cobra-lint: allow(D2) membership cache, never iterated\n"
      "std::unordered_set<int> s;\n");
  EXPECT_EQ(count_rule(fs, "D2-unordered"), 0u);
}

TEST(LintDriver, MultiRuleAnnotation) {
  const auto fs = lint_text(
      "src/core/x.cpp",
      "// cobra-lint: allow(D2-unordered, D4-atomic-order) test fixture\n"
      "std::unordered_map<int, std::atomic<int>> m; m[0].store(1);\n");
  EXPECT_EQ(count_rule(fs, "D2-unordered"), 0u);
  EXPECT_EQ(count_rule(fs, "D4-atomic-order"), 0u);
}

TEST(LintDriver, WrongRuleDoesNotSuppress) {
  const auto fs = lint_text(
      "src/core/x.cpp",
      "// cobra-lint: allow(D1-rand) some unrelated excuse\n"
      "std::unordered_map<int, int> m;\n");
  EXPECT_EQ(count_rule(fs, "D2-unordered"), 1u);
}

TEST(LintDriver, AnnotationDoesNotLeakPastCode) {
  // The block-above walk stops at intervening code: line 2's annotation
  // must not cover line 4's violation.
  const auto fs = lint_text(
      "src/core/x.cpp",
      "int a;\n"
      "// cobra-lint: allow(D2-unordered) covers only the next line\n"
      "std::unordered_map<int, int> covered;\n"
      "std::unordered_map<int, int> uncovered;\n");
  EXPECT_EQ(count_rule(fs, "D2-unordered"), 1u);
  EXPECT_EQ(fs.front().line, 4u);
}

TEST(LintDriver, MissingReasonIsAFindingAndDoesNotSuppress) {
  const auto fs = lint_text(
      "src/core/x.cpp",
      "// cobra-lint: allow(D2-unordered)\n"
      "std::unordered_map<int, int> m;\n");
  EXPECT_EQ(count_rule(fs, "lint-annotation"), 1u);
  EXPECT_EQ(count_rule(fs, "D2-unordered"), 1u);
}

TEST(LintDriver, MalformedMarkerIsAFinding) {
  const auto fs =
      lint_text("src/core/x.cpp", "// cobra-lint: allow D2 no parens\n");
  EXPECT_EQ(count_rule(fs, "lint-annotation"), 1u);
}

// ---------------------------------------------------------- baseline ----

TEST(LintDriver, BaselineRoundTrip) {
  const auto fs = lint_text("src/core/x.cpp",
                            "std::unordered_map<int, int> m;\n"
                            "int v = std::rand();\n");
  ASSERT_EQ(fs.size(), 2u);
  const std::string base = render_baseline(fs);
  const BaselineSplit split = apply_baseline(fs, base);
  EXPECT_TRUE(split.fresh.empty());
  EXPECT_EQ(split.known.size(), 2u);
}

TEST(LintDriver, BaselineSurvivesLineRenumbering) {
  const std::string base = render_baseline(
      lint_text("src/core/x.cpp", "std::unordered_map<int, int> m;\n"));
  // Same finding, pushed down ten lines and re-indented.
  const auto moved = lint_text(
      "src/core/x.cpp",
      std::string(10, '\n') + "    std::unordered_map<int, int>   m;\n");
  const BaselineSplit split = apply_baseline(moved, base);
  EXPECT_TRUE(split.fresh.empty());
  EXPECT_EQ(split.known.size(), 1u);
}

TEST(LintDriver, BaselineIsMultiset) {
  // One baseline line covers ONE occurrence; the second identical
  // violation is fresh.
  const auto one =
      lint_text("src/core/x.cpp", "std::unordered_map<int, int> m;\n");
  const std::string base = render_baseline(one);
  const auto two = lint_text("src/core/x.cpp",
                             "std::unordered_map<int, int> m;\n"
                             "std::unordered_map<int, int> m;\n");
  const BaselineSplit split = apply_baseline(two, base);
  EXPECT_EQ(split.known.size(), 1u);
  EXPECT_EQ(split.fresh.size(), 1u);
}

TEST(LintDriver, BaselineDoesNotCrossFiles) {
  const std::string base = render_baseline(
      lint_text("src/core/x.cpp", "std::unordered_map<int, int> m;\n"));
  const auto other =
      lint_text("src/core/y.cpp", "std::unordered_map<int, int> m;\n");
  const BaselineSplit split = apply_baseline(other, base);
  EXPECT_EQ(split.fresh.size(), 1u);
}

// --------------------------------------------------------- rendering ----

TEST(LintDriver, JsonCarriesFindingsAndCounts) {
  const auto fs = lint_text("src/core/x.cpp", "int v = std::rand();\n");
  BaselineSplit split;
  split.fresh = fs;
  const std::string json = render_findings_json(split);
  EXPECT_NE(json.find("\"rule\": \"D1-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/core/x.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"baselined\": false"), std::string::npos);
  EXPECT_NE(json.find("\"fresh\": 1"), std::string::npos);
}

TEST(LintDriver, JsonEscapesQuotes) {
  Finding f;
  f.file = "src/core/x.cpp";
  f.line = 1;
  f.rule = "D1-rand";
  f.message = "msg";
  f.snippet = "log(\"hi\\n\");";
  BaselineSplit split;
  split.fresh.push_back(f);
  const std::string json = render_findings_json(split);
  EXPECT_NE(json.find("log(\\\"hi\\\\n\\\");"), std::string::npos);
}

TEST(LintDriver, TableMarksFreshVsKnown) {
  const auto fs = lint_text("src/core/x.cpp",
                            "std::unordered_map<int, int> m;\n"
                            "int v = std::rand();\n");
  ASSERT_EQ(fs.size(), 2u);
  BaselineSplit split;
  split.fresh.push_back(fs[1]);
  split.known.push_back(fs[0]);
  const std::string table = render_findings_table(split);
  EXPECT_NE(table.find("FRESH"), std::string::npos);
  EXPECT_NE(table.find("known"), std::string::npos);
  EXPECT_NE(table.find("1 fresh finding(s), 1 baselined"), std::string::npos);
}

TEST(LintDriver, FindingsSortedByLine) {
  const auto fs = lint_text("src/core/x.cpp",
                            "int v = std::rand();\n"
                            "std::unordered_map<int, int> m;\n"
                            "auto id = std::this_thread::get_id();\n");
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_EQ(fs[1].line, 2u);
  EXPECT_EQ(fs[2].line, 3u);
}

}  // namespace
