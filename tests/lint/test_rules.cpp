#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hpp"

// Every rule family: fires on a violating snippet, stays silent on the
// clean/out-of-scope variant, and never fires on the same construct
// quoted in a string or discussed in a comment. Snippets are linted via
// lint_text, the exact path the real tool takes.

namespace {

using cobra::lint::Finding;
using cobra::lint::lint_text;

std::vector<std::string> rules_hit(const std::string& path,
                                   const std::string& src) {
  std::vector<std::string> out;
  for (const Finding& f : lint_text(path, src)) out.push_back(f.rule);
  return out;
}

bool hits(const std::string& path, const std::string& src,
          const std::string& rule) {
  const auto r = rules_hit(path, src);
  return std::find(r.begin(), r.end(), rule) != r.end();
}

// ----------------------------------------------------------- D1-rand ----

TEST(LintRules, RandFires) {
  EXPECT_TRUE(hits("src/core/x.cpp", "int v = std::rand();\n", "D1-rand"));
  EXPECT_TRUE(hits("bench/x.cpp", "srand(42);\n", "D1-rand"));
}

TEST(LintRules, RandSilentOnCleanAndNonCall) {
  EXPECT_FALSE(hits("src/core/x.cpp", "int v = gen.next();\n", "D1-rand"));
  // Identifier containing 'rand' on a word boundary but not a call.
  EXPECT_FALSE(hits("src/core/x.cpp", "int rand_count = 0;\n", "D1-rand"));
}

TEST(LintRules, RandSilentInStringAndComment) {
  EXPECT_FALSE(
      hits("src/core/x.cpp", "log(\"std::rand() is banned\");\n", "D1-rand"));
  EXPECT_FALSE(
      hits("src/core/x.cpp", "// never call std::rand() here\n", "D1-rand"));
}

// -------------------------------------------------- D1-random-device ----

TEST(LintRules, RandomDeviceScopedToRng) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_TRUE(hits("src/core/x.cpp", src, "D1-random-device"));
  EXPECT_TRUE(hits("src/sim/x.cpp", src, "D1-random-device"));
  EXPECT_FALSE(hits("src/rng/entropy.cpp", src, "D1-random-device"));
}

// ---------------------------------------------------------- D1-clock ----

TEST(LintRules, WallClockFiresEverywhere) {
  EXPECT_TRUE(hits("src/core/x.cpp",
                   "auto t = std::chrono::system_clock::now();\n",
                   "D1-clock"));
  EXPECT_TRUE(hits("bench/x.cpp", "seed = time(nullptr);\n", "D1-clock"));
  EXPECT_TRUE(hits("src/gen/x.cpp", "auto c = clock();\n", "D1-clock"));
}

TEST(LintRules, MonotonicClockScopedToObsAndBench) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(hits("src/core/x.cpp", src, "D1-clock"));
  EXPECT_FALSE(hits("src/obs/metrics.cpp", src, "D1-clock"));
  EXPECT_FALSE(hits("bench/bench_x.cpp", src, "D1-clock"));
  EXPECT_FALSE(hits("tools/x.cpp", src, "D1-clock"));
}

TEST(LintRules, ClockSilentOnLookalikes) {
  // time_point is its own identifier; member calls and fields named time
  // are not the libc time().
  EXPECT_FALSE(hits("src/core/x.cpp",
                    "std::uint64_t time_point = 0; t.time_ms = 4;\n",
                    "D1-clock"));
  EXPECT_FALSE(
      hits("src/core/x.cpp", "double cover_time(Vertex v);\n", "D1-clock"));
}

// ------------------------------------------------------ D1-thread-id ----

TEST(LintRules, ThreadIdFires) {
  EXPECT_TRUE(hits("src/core/x.cpp",
                   "auto id = std::this_thread::get_id();\n", "D1-thread-id"));
  EXPECT_TRUE(hits("src/sim/x.cpp",
                   "std::hash<std::thread::id> h;\n", "D1-thread-id"));
}

TEST(LintRules, ThreadIdSilentOnCleanThreads) {
  EXPECT_FALSE(hits("src/parallel/pool.cpp",
                    "std::vector<std::thread> workers;\n", "D1-thread-id"));
}

// ------------------------------------------------------ D2-unordered ----

TEST(LintRules, UnorderedFiresInSrc) {
  EXPECT_TRUE(hits("src/core/x.cpp",
                   "std::unordered_map<int, int> m;\n", "D2-unordered"));
  EXPECT_TRUE(hits("src/gen/x.cpp", "std::unordered_set<Vertex> s;\n",
                   "D2-unordered"));
  EXPECT_TRUE(hits("src/graph/x.cpp", "std::unordered_multiset<int> s;\n",
                   "D2-unordered"));
}

TEST(LintRules, UnorderedExemptions) {
  // bench/tools are measurement/CLI code — out of scope by design.
  EXPECT_FALSE(hits("bench/sweep.cpp", "std::unordered_map<int, int> m;\n",
                    "D2-unordered"));
  // The #include line is not the hazard; the use sites are.
  EXPECT_FALSE(hits("src/core/x.cpp", "#include <unordered_map>\n",
                    "D2-unordered"));
}

// ------------------------------------------------------- D3-rng-seed ----

TEST(LintRules, RngSeedFiresOnRawConstruction) {
  EXPECT_TRUE(hits("src/core/x.cpp", "Engine gen(12345);\n", "D3-rng-seed"));
  EXPECT_TRUE(hits("src/core/x.cpp",
                   "auto r = rng::Xoshiro256(seed + chunk);\n",
                   "D3-rng-seed"));
  EXPECT_TRUE(
      hits("src/core/x.cpp", "Engine gen{round ^ 7};\n", "D3-rng-seed"));
}

TEST(LintRules, RngSeedSilentWhenDerived) {
  EXPECT_FALSE(hits("src/core/x.cpp",
                    "Engine gen(rng::derive_seed(round_seed, c));\n",
                    "D3-rng-seed"));
  // References, default construction, copies of an existing stream.
  EXPECT_FALSE(hits("src/core/x.cpp", "void f(Engine& gen);\n",
                    "D3-rng-seed"));
  EXPECT_FALSE(hits("src/core/x.cpp", "Engine fork(parent_gen);\n",
                    "D3-rng-seed"));
  // Out of scope: the bench layer seeds its root stream from --seed.
  EXPECT_FALSE(hits("bench/x.cpp", "Engine gen(args_seed);\n",
                    "D3-rng-seed"));
}

// ----------------------------------------------------- D3-thread-key ----

TEST(LintRules, ThreadKeyFires) {
  EXPECT_TRUE(hits("src/core/x.cpp",
                   "auto s = rng::derive_seed(round_seed, worker);\n",
                   "D3-thread-key"));
  EXPECT_TRUE(hits("src/sim/x.cpp",
                   "derive_seed(seed, thread_id);\n", "D3-thread-key"));
}

TEST(LintRules, ThreadKeySilentOnWorkKeys) {
  EXPECT_FALSE(hits("src/core/x.cpp",
                    "auto s = rng::derive_seed(round_seed, chunk);\n",
                    "D3-thread-key"));
  // 'workers' (the pool size) is not 'worker' (the executing lane).
  EXPECT_FALSE(hits("src/core/x.cpp",
                    "auto s = rng::derive_seed(seed, workers);\n",
                    "D3-thread-key"));
}

// ---------------------------------------------------- D4-atomic-order ----

TEST(LintRules, AtomicOrderFires) {
  EXPECT_TRUE(hits("src/core/x.cpp", "flag.store(true);\n",
                   "D4-atomic-order"));
  EXPECT_TRUE(hits("src/obs/x.cpp", "auto v = count.load();\n",
                   "D4-atomic-order"));
  EXPECT_TRUE(hits("src/util/x.cpp", "count->fetch_add(1);\n",
                   "D4-atomic-order"));
  EXPECT_TRUE(hits("src/core/x.cpp", "old = word.exchange(next);\n",
                   "D4-atomic-order"));
}

TEST(LintRules, AtomicOrderSilentWhenExplicit) {
  EXPECT_FALSE(hits("src/core/x.cpp",
                    "flag.store(true, std::memory_order_relaxed);\n",
                    "D4-atomic-order"));
  EXPECT_FALSE(hits("src/core/x.cpp",
                    "word.fetch_or(bit, std::memory_order_relaxed);\n",
                    "D4-atomic-order"));
  EXPECT_FALSE(hits(
      "src/core/x.cpp",
      "auto v = gate.load(\n      std::memory_order_acquire);\n",
      "D4-atomic-order"));
}

TEST(LintRules, AtomicOrderSilentOnNonMembers) {
  // Free functions / other members on word boundaries must not match.
  EXPECT_FALSE(hits("src/core/x.cpp", "load(path);\n", "D4-atomic-order"));
  EXPECT_FALSE(hits("src/core/x.cpp", "reader.preload(x);\n",
                    "D4-atomic-order"));
}

// -------------------------------------------------------- D5-layering ----

TEST(LintRules, LayeringFiresUpward) {
  EXPECT_TRUE(hits("src/core/x.cpp", "#include \"sim/runner.hpp\"\n",
                   "D5-layering"));
  EXPECT_TRUE(hits("src/rng/x.cpp", "#include \"core/types.hpp\"\n",
                   "D5-layering"));
  EXPECT_TRUE(hits("src/sim/x.cpp", "#include \"bench/harness.hpp\"\n",
                   "D5-layering"));
  EXPECT_TRUE(hits("bench/x.cpp", "#include \"tools/x.hpp\"\n",
                   "D5-layering"));
}

TEST(LintRules, LayeringAllowsDownAndSideways) {
  EXPECT_FALSE(hits("src/core/x.cpp", "#include \"graph/graph.hpp\"\n",
                    "D5-layering"));
  EXPECT_FALSE(hits("src/sim/x.cpp", "#include \"core/types.hpp\"\n",
                    "D5-layering"));
  EXPECT_FALSE(hits("src/gen/x.cpp", "#include \"graph/builder.hpp\"\n",
                    "D5-layering"));
  // System includes and same-directory includes are unconstrained.
  EXPECT_FALSE(hits("src/core/x.cpp", "#include <vector>\n", "D5-layering"));
  EXPECT_FALSE(hits("bench/x.cpp", "#include \"harness.hpp\"\n",
                    "D5-layering"));
}

}  // namespace
