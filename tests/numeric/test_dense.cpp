#include "numeric/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::numeric {
namespace {

TEST(Matrix, Basics) {
  Matrix m(3);
  m.at(0, 1) = 5.0;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at(0, 1), 5.0);
  EXPECT_EQ(m.at(1, 0), 0.0);
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id.at(2, 2), 1.0);
  EXPECT_EQ(id.at(0, 2), 0.0);
  EXPECT_TRUE(id.is_symmetric());
  EXPECT_FALSE(m.is_symmetric());
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2), b(2);
  a.at(0, 0) = 1.0;
  b.at(0, 0) = 1.5;
  b.at(1, 1) = -0.2;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  EXPECT_THROW((void)a.max_abs_diff(Matrix(3)), std::invalid_argument);
}

TEST(SolveLinear, HandSolvable) {
  // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3.
  Matrix a(2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, IdentityIsNoop) {
  const auto x = solve_linear(Matrix::identity(4), {1, 2, 3, 4});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(x[i], static_cast<double>(i) + 1.0, 1e-14);
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero diagonal leading entry: naive elimination would divide by zero.
  Matrix a(2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_linear(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveLinear, SizeMismatchThrows) {
  EXPECT_THROW(solve_linear(Matrix(2), {1.0}), std::invalid_argument);
}

TEST(SolveLinear, RandomSystemResidual) {
  rng::Xoshiro256 gen(1);
  constexpr std::size_t kN = 60;
  Matrix a(kN);
  std::vector<double> b(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    b[i] = rng::uniform_unit(gen) * 10 - 5;
    for (std::size_t j = 0; j < kN; ++j) {
      a.at(i, j) = rng::uniform_unit(gen) * 2 - 1;
    }
    a.at(i, i) += kN;  // diagonally dominant: well-conditioned
  }
  const auto x = solve_linear(a, b);
  for (std::size_t i = 0; i < kN; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < kN; ++j) acc += a.at(i, j) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(SymmetricEigenvalues, DiagonalMatrix) {
  Matrix a(3);
  a.at(0, 0) = 3;
  a.at(1, 1) = -1;
  a.at(2, 2) = 2;
  const auto ev = symmetric_eigenvalues(a);
  EXPECT_NEAR(ev[0], -1.0, 1e-12);
  EXPECT_NEAR(ev[1], 2.0, 1e-12);
  EXPECT_NEAR(ev[2], 3.0, 1e-12);
}

TEST(SymmetricEigenvalues, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a(2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 2;
  const auto ev = symmetric_eigenvalues(a);
  EXPECT_NEAR(ev[0], 1.0, 1e-10);
  EXPECT_NEAR(ev[1], 3.0, 1e-10);
}

TEST(SymmetricEigenvalues, PathLaplacianClosedForm) {
  // Laplacian of the path graph P_n has eigenvalues 2 - 2 cos(pi k / n)...
  // use the standard tridiagonal free-boundary form: 4 sin^2(pi k / (2n)).
  constexpr std::size_t kN = 8;
  Matrix l(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double degree = (i == 0 || i == kN - 1) ? 1.0 : 2.0;
    l.at(i, i) = degree;
    if (i + 1 < kN) {
      l.at(i, i + 1) = -1.0;
      l.at(i + 1, i) = -1.0;
    }
  }
  const auto ev = symmetric_eigenvalues(l);
  for (std::size_t k = 0; k < kN; ++k) {
    const double expected =
        4.0 * std::pow(std::sin(std::numbers::pi * static_cast<double>(k) /
                                (2.0 * kN)),
                       2.0);
    EXPECT_NEAR(ev[k], expected, 1e-9) << "k=" << k;
  }
}

TEST(SymmetricEigenvalues, TraceAndRankPreserved) {
  rng::Xoshiro256 gen(2);
  constexpr std::size_t kN = 20;
  Matrix a(kN);
  double trace = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = i; j < kN; ++j) {
      const double value = rng::uniform_unit(gen) * 2 - 1;
      a.at(i, j) = value;
      a.at(j, i) = value;
    }
    trace += a.at(i, i);
  }
  const auto ev = symmetric_eigenvalues(a);
  double ev_sum = 0.0;
  for (const double e : ev) ev_sum += e;
  EXPECT_NEAR(ev_sum, trace, 1e-8);
}

TEST(SymmetricEigenvalues, RejectsAsymmetric) {
  Matrix a(2);
  a.at(0, 1) = 1.0;
  EXPECT_THROW(symmetric_eigenvalues(a), std::invalid_argument);
}

}  // namespace
}  // namespace cobra::numeric
