// The observability contract's keystone: telemetry ON vs OFF yields
// bit-identical trajectories. "On" here arms everything switchable at
// runtime — the JSONL trace sink plus a MetricsObserver — and the
// reference runs bare; sizes, first-visit times, round counts, and the
// post-run engine state must match exactly, at 1, 2, and 8 threads.
// The worst-case variant additionally arms the invariant auditor at its
// loudest level AND a storm of GRACEFUL fault sites: observation and
// graceful degradation may cost speed, never results.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/cobra_walk.hpp"
#include "core/gossip.hpp"
#include "gen/registry.hpp"
#include "obs/metrics_observer.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/observers.hpp"
#include "sim/process.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"
#include "util/fault.hpp"

namespace {

using namespace cobra;

struct Trajectory {
  std::uint64_t rounds = 0;
  std::vector<std::size_t> sizes;
  std::vector<std::uint64_t> visits;
  std::uint64_t next_draw = 0;  ///< post-run engine output: RNG stream state

  bool operator==(const Trajectory&) const = default;
};

constexpr std::size_t kChunk = 64;

template <class MakeProcess>
Trajectory run_case(MakeProcess&& make, std::uint64_t seed,
                    par::ThreadPool* pool, bool telemetry) {
  if (telemetry) {
    const std::string path = testing::TempDir() + "cobra_inert.jsonl";
    EXPECT_TRUE(obs::open_global_trace(path));
  }
  auto process = make();
  if (pool != nullptr) {
    process.engine().options() = {kChunk, 1, pool};
  } else {
    process.engine().options() = {kChunk, static_cast<std::size_t>(-1),
                                  nullptr};
  }
  core::Engine gen(seed);
  sim::CoverStop cover;
  sim::GrowthCurve curve;
  sim::FirstVisitTimes visits;
  Trajectory t;
  if (telemetry) {
    obs::MetricsObserver metrics;
    const auto r =
        sim::Runner(1u << 18).run(process, gen, cover, curve, visits, metrics);
    EXPECT_TRUE(r.stopped);
    t.rounds = r.rounds;
  } else {
    const auto r = sim::Runner(1u << 18).run(process, gen, cover, curve, visits);
    EXPECT_TRUE(r.stopped);
    t.rounds = r.rounds;
  }
  t.sizes = curve.sizes();
  t.visits = visits.times();
  t.next_draw = gen();
  obs::close_global_trace();
  return t;
}

template <class MakeProcess>
void expect_inert(MakeProcess&& make, std::uint64_t seed) {
  par::ThreadPool pool1(1), pool2(2), pool8(8);
  const std::vector<par::ThreadPool*> pools = {nullptr, &pool1, &pool2, &pool8};
  // The serial bare run is the one reference every combination must hit.
  const Trajectory reference = run_case(make, seed, nullptr, false);
  for (par::ThreadPool* pool : pools) {
    const Trajectory off = run_case(make, seed, pool, false);
    const Trajectory on = run_case(make, seed, pool, true);
    EXPECT_EQ(off, reference);
    EXPECT_EQ(on, reference);
  }
}

TEST(Inert, CobraWalkCoverTrajectoriesIgnoreTelemetry) {
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=7");
  expect_inert([&] { return core::CobraWalk(g, 0, 2); }, 1234);
}

TEST(Inert, GossipCoverTrajectoriesIgnoreTelemetry) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=6,seed=21");
  expect_inert([&] { return core::Gossip(g, 0); }, 4321);
}

TEST(Inert, AuditAndGracefulFaultStormStayInertToo) {
  // The chaos-harness keystone: full telemetry + the auditor at level 2 +
  // every in-engine GRACEFUL fault site armed probabilistically must
  // still reproduce the bare serial trajectory at 1/2/8 threads.
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=7");
  const auto make = [&] { return core::CobraWalk(g, 0, 2); };
  const Trajectory reference = run_case(make, 1234, nullptr, false);

  core::audit::set_level(2);
  core::audit::set_throw_on_violation(true);  // a violation fails the test
  util::fault::arm_plan(util::fault::FaultPlan::parse(
      "frontier.dense_alloc@2%0.5,frontier.materialize_alloc%0.5,"
      "rng.block_refill%0.25,trace.write@3%0.5"));
  par::ThreadPool pool1(1), pool2(2), pool8(8);
  for (par::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    EXPECT_EQ(run_case(make, 1234, pool, true), reference);
  }
  util::fault::disarm_all();
  core::audit::set_throw_on_violation(false);
  core::audit::set_level(0);
  EXPECT_EQ(run_case(make, 1234, nullptr, false), reference);  // and back off
}

}  // namespace
