// Tests for the obs metrics registry: counter/gauge/timer primitives,
// snapshot/reset semantics, concurrent increments, the fault registry's
// migration onto registry-backed counters, and MetricsObserver through
// sim::Runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cobra_walk.hpp"
#include "gen/registry.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_observer.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"
#include "util/fault.hpp"

namespace {

using namespace cobra;

const obs::Sample* find_sample(const std::vector<obs::Sample>& samples,
                               const std::string& name) {
  const auto it = std::find_if(samples.begin(), samples.end(),
                               [&](const obs::Sample& s) {
                                 return s.name == name;
                               });
  return it == samples.end() ? nullptr : &*it;
}

TEST(Metrics, CounterAddReturnsPreviousValue) {
  obs::Counter c;
  EXPECT_EQ(c.add(), 0u);
  EXPECT_EQ(c.add(5), 1u);
  EXPECT_EQ(c.value(), 6u);
  c.set(0);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, TimerAccumulatesAcrossSlots) {
  obs::Timer t;
  t.add(100);
  t.add(50, 3);
  EXPECT_EQ(t.total_ns(), 150u);
  EXPECT_EQ(t.count(), 4u);
  t.reset();
  EXPECT_EQ(t.total_ns(), 0u);
  EXPECT_EQ(t.count(), 0u);
}

TEST(Metrics, RegistryReturnsStableReferencesByName) {
  obs::Counter& a = obs::registry().counter("test.stable");
  obs::Counter& b = obs::registry().counter("test.stable");
  EXPECT_EQ(&a, &b);
  // Distinct kinds under one name are distinct metrics.
  obs::Gauge& g = obs::registry().gauge("test.stable");
  g.set(2.5);
  a.add(7);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, SnapshotListsRegisteredMetricsSorted) {
  obs::registry().counter("test.snap.b").set(3);
  obs::registry().counter("test.snap.a").set(1);
  obs::registry().gauge("test.snap.g").set(0.5);
  obs::Timer& t = obs::registry().timer("test.snap.t");
  t.reset();
  t.add(2'000'000'000, 2);  // 2 s over 2 calls

  const auto samples = obs::registry().snapshot();
  EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end(),
                             [](const obs::Sample& x, const obs::Sample& y) {
                               return x.name < y.name;
                             }));
  const obs::Sample* a = find_sample(samples, "test.snap.a");
  const obs::Sample* b = find_sample(samples, "test.snap.b");
  const obs::Sample* g = find_sample(samples, "test.snap.g");
  const obs::Sample* timer = find_sample(samples, "test.snap.t");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(a->kind, "counter");
  EXPECT_DOUBLE_EQ(a->value, 1.0);
  EXPECT_DOUBLE_EQ(b->value, 3.0);
  EXPECT_EQ(g->kind, "gauge");
  EXPECT_DOUBLE_EQ(g->value, 0.5);
  EXPECT_EQ(timer->kind, "timer");
  EXPECT_DOUBLE_EQ(timer->value, 2.0);  // seconds
  EXPECT_EQ(timer->count, 2u);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrationsAndReferences) {
  obs::Counter& c = obs::registry().counter("test.reset.c");
  obs::Gauge& g = obs::registry().gauge("test.reset.g");
  obs::Timer& t = obs::registry().timer("test.reset.t");
  c.add(9);
  g.set(1.25);
  t.add(10);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(t.total_ns(), 0u);
  // Registration survives: the name still snapshots, and the cached
  // reference still feeds it.
  c.add(2);
  const obs::Sample* s = find_sample(obs::registry().snapshot(), "test.reset.c");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 2.0);
}

TEST(Metrics, ConcurrentIncrementsLoseNothing) {
  obs::Counter& c = obs::registry().counter("test.concurrent");
  obs::Timer& t = obs::registry().timer("test.concurrent.t");
  c.set(0);
  t.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        t.add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(t.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(t.total_ns(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, FaultHitsAreRegistryBackedCounters) {
  util::fault::disarm_all();
  util::fault::arm("test.site", 2);
  EXPECT_FALSE(util::fault::should_fail("test.site"));  // hit 0
  EXPECT_FALSE(util::fault::should_fail("test.site"));  // hit 1
  EXPECT_TRUE(util::fault::should_fail("test.site"));   // hit 2: fails
  EXPECT_EQ(util::fault::hits("test.site"), 3u);
  // The same count is visible through the registry — hits() is now a thin
  // wrapper over "fault.<site>.hits".
  EXPECT_EQ(obs::registry().counter("fault.test.site.hits").value(), 3u);
  const obs::Sample* s =
      find_sample(obs::registry().snapshot(), "fault.test.site.hits");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 3.0);
  util::fault::disarm_all();
}

TEST(Metrics, MetricsObserverFeedsRegistryThroughRunner) {
  const graph::Graph g = gen::build_graph("rreg:n=128,d=4,seed=11");
  obs::Counter& rounds = obs::registry().counter("sim.observed_rounds");
  obs::Counter& runs = obs::registry().counter("sim.observed_runs");
  const std::uint64_t rounds_before = rounds.value();
  const std::uint64_t runs_before = runs.value();
  core::Engine gen(77);
  core::CobraWalk walk(g, 0, 2);
  sim::CoverStop cover;
  obs::MetricsObserver metrics;
  const auto r = sim::Runner(1u << 20).run(walk, gen, cover, metrics);
  ASSERT_TRUE(r.stopped);
  EXPECT_EQ(rounds.value() - rounds_before, r.rounds);
  EXPECT_EQ(runs.value() - runs_before, 1u);
  EXPECT_GE(obs::registry().gauge("sim.peak_active_size").value(), 1.0);
}

TEST(Metrics, WriteMetricsJsonEmitsManifestAndSamples) {
  obs::registry().counter("test.json.marker").set(42);
  const std::string path = testing::TempDir() + "cobra_metrics_test.json";
  ASSERT_TRUE(obs::write_metrics_json(path));
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();
  EXPECT_NE(text.find("\"manifest\""), std::string::npos);
  EXPECT_NE(text.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(text.find("\"build_type\""), std::string::npos);
  EXPECT_NE(text.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(text.find("\"test.json.marker\""), std::string::npos);
  EXPECT_EQ(text.front(), '{');
  // The manifest helper agrees with what was stamped.
  const obs::Manifest m = obs::current_manifest();
  EXPECT_NE(text.find(m.git_sha), std::string::npos);
  EXPECT_FALSE(m.build_type.empty());
}

}  // namespace
