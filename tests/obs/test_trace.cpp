// Tests for the per-round JSONL trace sink: every emitted line parses,
// rounds are strictly increasing per engine, the mode/path/switch
// vocabularies hold, and the occupancy/rng fields are self-consistent.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/cobra_walk.hpp"
#include "gen/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"

namespace {

using namespace cobra;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Extract the raw text after `"key": ` up to the next ',' or '}' — enough
/// structure checking for the flat one-line schema trace_round() writes.
std::string raw_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  std::size_t end = line.find_first_of(",}", start);
  if (end == std::string::npos) end = line.size();
  return line.substr(start, end - start);
}

std::uint64_t u64_field(const std::string& line, const std::string& key) {
  const std::string raw = raw_field(line, key);
  EXPECT_FALSE(raw.empty()) << "missing field " << key << " in: " << line;
  return raw.empty() ? 0 : std::stoull(raw);
}

std::string str_field(const std::string& line, const std::string& key) {
  std::string raw = raw_field(line, key);
  EXPECT_GE(raw.size(), 2u) << "missing string field " << key;
  if (raw.size() < 2) return {};
  EXPECT_EQ(raw.front(), '"');
  EXPECT_EQ(raw.back(), '"');
  return raw.substr(1, raw.size() - 2);
}

double double_field(const std::string& line, const std::string& key) {
  const std::string raw = raw_field(line, key);
  EXPECT_FALSE(raw.empty()) << "missing field " << key;
  return raw.empty() ? 0.0 : std::stod(raw);
}

class TraceTest : public testing::Test {
 protected:
  void TearDown() override { obs::close_global_trace(); }
};

TEST_F(TraceTest, DisabledByDefaultAndArmsOnOpen) {
  EXPECT_FALSE(obs::trace_enabled());
  const std::string path = testing::TempDir() + "cobra_trace_arm.jsonl";
  ASSERT_TRUE(obs::open_global_trace(path));
  EXPECT_TRUE(obs::trace_enabled());
  obs::close_global_trace();
  EXPECT_FALSE(obs::trace_enabled());
}

TEST_F(TraceTest, CoverRunEmitsWellFormedStrictlyIncreasingRounds) {
  const std::string path = testing::TempDir() + "cobra_trace_cover.jsonl";
  ASSERT_TRUE(obs::open_global_trace(path));

  // A cover run that crosses the sparse -> dense threshold (dense_alpha
  // 256 on n=512 goes dense once the frontier passes 2), exercising both
  // representations and the auto-grow switch note.
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=7");
  core::Engine gen(1234);
  core::CobraWalk walk(g, 0, 2);
  sim::CoverStop cover;
  const auto r = sim::Runner(1u << 18).run(walk, gen, cover);
  ASSERT_TRUE(r.stopped);
  obs::close_global_trace();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), r.rounds);

  std::map<std::uint64_t, std::uint64_t> last_round;  // per trace id
  bool saw_dense = false;
  bool saw_grow = false;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');

    const std::uint64_t id = u64_field(line, "trace");
    const std::uint64_t round = u64_field(line, "round");
    EXPECT_GE(id, 1u);
    if (const auto it = last_round.find(id); it != last_round.end()) {
      EXPECT_GT(round, it->second) << "rounds must strictly increase";
    }
    last_round[id] = round;

    const std::string mode = str_field(line, "mode");
    EXPECT_TRUE(mode == "sparse" || mode == "dense") << mode;
    saw_dense = saw_dense || mode == "dense";
    const std::string exec_path = str_field(line, "path");
    EXPECT_TRUE(exec_path == "serial" || exec_path == "parallel") << exec_path;
    const std::string why = str_field(line, "switch");
    EXPECT_TRUE(why.empty() || why == "auto-grow" || why == "auto-shrink" ||
                why == "forced-sparse" || why == "forced-dense" ||
                why == "dense-alloc-fallback")
        << why;
    saw_grow = saw_grow || why == "auto-grow";

    const std::uint64_t frontier = u64_field(line, "frontier");
    const std::uint64_t chunks = u64_field(line, "chunks");
    const std::uint64_t max_chunk = u64_field(line, "max_chunk");
    EXPECT_GE(frontier, 1u);
    EXPECT_GE(chunks, 1u);
    EXPECT_GE(max_chunk, 1u);
    EXPECT_LE(max_chunk, frontier);
    const double mean_chunk = double_field(line, "mean_chunk");
    EXPECT_GT(mean_chunk, 0.0);
    EXPECT_LE(mean_chunk, static_cast<double>(max_chunk));
    EXPECT_GE(double_field(line, "seconds"), 0.0);
    u64_field(line, "produced");    // present
    u64_field(line, "rng_blocks");  // present
  }
  EXPECT_TRUE(saw_dense) << "cover run never went dense";
  EXPECT_TRUE(saw_grow) << "no auto-grow switch was recorded";
  // All lines came from the single engine of this run.
  EXPECT_EQ(last_round.size(), 1u);
}

TEST_F(TraceTest, ParallelRoundsReportChunkedPath) {
  const std::string path = testing::TempDir() + "cobra_trace_par.jsonl";
  ASSERT_TRUE(obs::open_global_trace(path));

  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=3");
  par::ThreadPool pool(2);
  core::CobraWalk walk(g, 0, 2);
  walk.engine().options() = {64, 1, &pool};  // force the parallel path
  core::Engine gen(99);
  sim::CoverStop cover;
  const auto r = sim::Runner(1u << 18).run(walk, gen, cover);
  ASSERT_TRUE(r.stopped);
  obs::close_global_trace();

  bool saw_parallel_chunks = false;
  for (const std::string& line : read_lines(path)) {
    if (str_field(line, "path") == "parallel" &&
        u64_field(line, "chunks") > 1) {
      saw_parallel_chunks = true;
    }
  }
  EXPECT_TRUE(saw_parallel_chunks);
}

TEST_F(TraceTest, TraceWriteFaultDropsLinesAndCountsThem) {
  // The trace.write site (GRACEFUL): an armed firing drops the line and
  // bumps trace.lines_dropped — telemetry loss must never surface as an
  // exception or affect results.
  const std::string path = testing::TempDir() + "cobra_trace_fault.jsonl";
  ASSERT_TRUE(obs::open_global_trace(path));
  const std::uint64_t dropped_before =
      obs::registry().counter("trace.lines_dropped").value();
  util::fault::disarm_all();
  util::fault::arm("trace.write", 2);  // drop from the 3rd line onward
  for (std::uint64_t r = 1; r <= 5; ++r) {
    obs::RoundTrace t;
    t.trace_id = 77;
    t.round = r;
    t.frontier = 1;
    obs::trace_round(t);
  }
  util::fault::disarm_all();
  obs::close_global_trace();
  // The file holds the 2 surviving round lines — plus one {"fault": ...}
  // event line per firing, because the fault log bypasses the site it
  // reports on. Count the kinds separately.
  std::size_t round_lines = 0, fault_lines = 0;
  for (const std::string& line : read_lines(path)) {
    if (raw_field(line, "fault").empty()) {
      ++round_lines;
    } else {
      ++fault_lines;
    }
  }
  EXPECT_EQ(round_lines, 2u);
  EXPECT_EQ(fault_lines, 3u);
  EXPECT_EQ(obs::registry().counter("trace.lines_dropped").value(),
            dropped_before + 3);
}

TEST_F(TraceTest, FaultFiringsLandInTheTraceLog) {
  // Every firing is emitted as a {"fault": ...} line — and trace_fault
  // bypasses the trace.write site, so the fault log cannot suppress
  // itself even while trace.write is armed.
  const std::string path = testing::TempDir() + "cobra_fault_events.jsonl";
  ASSERT_TRUE(obs::open_global_trace(path));
  util::fault::disarm_all();
  util::fault::arm("trace.write", 1000);  // armed but never firing
  util::fault::arm("demo.site", 1);
  (void)util::fault::should_fail("demo.site");  // hit 0: no fire
  (void)util::fault::should_fail("demo.site");  // hit 1: fires
  util::fault::disarm_all();
  obs::close_global_trace();
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(str_field(lines[0], "fault"), "demo.site");
  EXPECT_EQ(u64_field(lines[0], "hit"), 1u);
  EXPECT_EQ(u64_field(lines[0], "fire"), 1u);
}

TEST_F(TraceTest, ReopenTruncatesAndReuses) {
  const std::string path = testing::TempDir() + "cobra_trace_reopen.jsonl";
  ASSERT_TRUE(obs::open_global_trace(path));
  obs::RoundTrace t;
  t.trace_id = obs::next_trace_id();
  t.round = 1;
  t.frontier = 1;
  obs::trace_round(t);
  obs::close_global_trace();
  ASSERT_EQ(read_lines(path).size(), 1u);
  // Re-open truncates: the old line is gone.
  ASSERT_TRUE(obs::open_global_trace(path));
  obs::close_global_trace();
  EXPECT_TRUE(read_lines(path).empty());
}

}  // namespace
