#include <gtest/gtest.h>

#include "parallel/monte_carlo.hpp"

namespace cobra::par {
namespace {

// Own binary on purpose: the global pool is created once per process, so
// this ordering-sensitive test must not share a process with suites that
// touch global_pool() first. Kept as ONE test so the create-then-reject
// sequence is a single deterministic program order.
TEST(GlobalPool, ThreadRequestAppliesOnlyBeforeFirstUse) {
  // Before the pool exists, a request is accepted and sizes the pool.
  EXPECT_TRUE(request_global_pool_threads(2));
  EXPECT_EQ(global_pool().size(), 2u);
  // Once created, later requests are rejected and the size is unchanged —
  // the contract behind the benches' --threads flag warning.
  EXPECT_FALSE(request_global_pool_threads(4));
  EXPECT_EQ(global_pool().size(), 2u);
}

}  // namespace
}  // namespace cobra::par
