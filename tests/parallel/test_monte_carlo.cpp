#include "parallel/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/distributions.hpp"

namespace cobra::par {
namespace {

double noisy_trial(rng::Xoshiro256& gen, std::uint32_t /*index*/) {
  return rng::uniform_unit(gen);
}

TEST(MonteCarlo, ParallelMatchesSerial) {
  ThreadPool pool(8);
  MonteCarloOptions opts;
  opts.base_seed = 12345;
  opts.trials = 500;
  const auto parallel = run_trials(pool, opts, noisy_trial);
  const auto serial = run_trials_serial(opts, noisy_trial);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "trial " << i;
  }
}

TEST(MonteCarlo, StaticScheduleAlsoMatches) {
  ThreadPool pool(4);
  MonteCarloOptions opts;
  opts.base_seed = 777;
  opts.trials = 333;
  opts.dynamic_schedule = false;
  const auto a = run_trials(pool, opts, noisy_trial);
  const auto b = run_trials_serial(opts, noisy_trial);
  EXPECT_EQ(a, b);
}

TEST(MonteCarlo, ThreadCountInvariant) {
  MonteCarloOptions opts;
  opts.base_seed = 42;
  opts.trials = 200;
  ThreadPool one(1);
  ThreadPool many(16);
  EXPECT_EQ(run_trials(one, opts, noisy_trial), run_trials(many, opts, noisy_trial));
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  MonteCarloOptions a, b;
  a.base_seed = 1;
  b.base_seed = 2;
  a.trials = b.trials = 50;
  EXPECT_NE(run_trials_serial(a, noisy_trial), run_trials_serial(b, noisy_trial));
}

TEST(MonteCarlo, TrialsAreIndependentStreams) {
  MonteCarloOptions opts;
  opts.trials = 1000;
  const auto results = run_trials_serial(opts, noisy_trial);
  const std::set<double> unique(results.begin(), results.end());
  EXPECT_EQ(unique.size(), results.size());  // collisions would betray stream reuse
}

TEST(MonteCarlo, TrialIndexIsPassedThrough) {
  MonteCarloOptions opts;
  opts.trials = 64;
  const auto results = run_trials_serial(
      opts, [](rng::Xoshiro256&, std::uint32_t index) {
        return static_cast<double>(index);
      });
  for (std::uint32_t i = 0; i < opts.trials; ++i) {
    EXPECT_EQ(results[i], static_cast<double>(i));
  }
}

TEST(MonteCarlo, ZeroTrialsYieldEmpty) {
  MonteCarloOptions opts;
  opts.trials = 0;
  EXPECT_TRUE(run_trials_serial(opts, noisy_trial).empty());
}

TEST(MonteCarlo, GlobalPoolIsSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(MonteCarlo, SampleMeanConverges) {
  ThreadPool pool(8);
  MonteCarloOptions opts;
  opts.trials = 20000;
  const auto results = run_trials(pool, opts, noisy_trial);
  double sum = 0.0;
  for (const double r : results) sum += r;
  EXPECT_NEAR(sum / static_cast<double>(results.size()), 0.5, 0.01);
}

}  // namespace
}  // namespace cobra::par
