#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cobra::par {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, 0, visits.size(), [&](std::size_t i) {
    visits[i].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 5, 5, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(pool, 7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NonzeroBegin) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelFor, MatchesSerialSum) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 100000;
  std::atomic<long long> sum{0};
  parallel_for(pool, 0, kN, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i) * 3);
  });
  long long expected = 0;
  for (std::size_t i = 0; i < kN; ++i) expected += static_cast<long long>(i) * 3;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> ok{0};
  parallel_for(pool, 0, 10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ParallelForDynamic, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(997);  // prime: uneven chunks
  parallel_for_dynamic(pool, 0, visits.size(), [&](std::size_t i) {
    visits[i].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForDynamic, HandlesSkewedWork) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  parallel_for_dynamic(pool, 0, 100, [&](std::size_t i) {
    // index 0 is 1000x more work than the rest
    long sink = 0;
    const long reps = i == 0 ? 100000 : 100;
    for (long r = 0; r < reps; ++r) sink += r;
    // Fold the busy-work result into the sum's low bits being unchanged:
    // (sink is always even * odd pairs...) just prevent optimization by
    // using it in a branch that never fires.
    if (sink < 0) sum.fetch_add(1);
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelForDynamic, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for_dynamic(pool, 0, 50,
                                    [](std::size_t i) {
                                      if (i == 13) throw std::logic_error("x");
                                    }),
               std::logic_error);
}

TEST(ParallelForDynamic, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for_dynamic(pool, 3, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleThreadPoolStillCorrect) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  parallel_for(pool, 0, 1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 499500);
}

}  // namespace
}  // namespace cobra::par
