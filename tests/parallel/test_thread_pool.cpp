#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "util/fault.hpp"

namespace cobra::par {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      in_flight.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::set<std::thread::id> ids;
  std::mutex m;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      const std::lock_guard lock(m);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
  EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    // No wait_idle: destruction must drain.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, SpawnFaultShrinksThePoolButKeepsOneWorker) {
  // pool.thread_spawn (GRACEFUL): a worker start fails, the pool comes up
  // smaller. Worker 0 is exempt from the site, so even every-spawn-fails
  // leaves one worker and submitted tasks still complete.
  util::fault::disarm_all();
  util::fault::arm("pool.thread_spawn");
  ThreadPool pool(4);
  const std::uint64_t fired = util::fault::fired("pool.thread_spawn");
  util::fault::disarm_all();
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(fired, 3u);  // workers 1..3 each lost to the fault
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SpawnFaultLimitLosesOnlySomeWorkers) {
  util::fault::disarm_all();
  // at most 2 spawn failures
  util::fault::arm_spec(
      util::fault::FaultPlan::parse("pool.thread_spawn#2").specs[0]);
  ThreadPool pool(6);
  util::fault::disarm_all();
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, QueuedCountsOnlyPending) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Give the worker time to dequeue the blocker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.submit([] {});
  pool.submit([] {});
  EXPECT_EQ(pool.queued(), 2u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.queued(), 0u);
}

}  // namespace
}  // namespace cobra::par
