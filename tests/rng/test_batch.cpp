#include "rng/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/fault.hpp"

namespace cobra::rng {
namespace {

TEST(Batched, StreamEquivalentToWrappedEngine) {
  Xoshiro256 raw(42);
  Batched<Xoshiro256, 32> batched(Xoshiro256(42));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(batched(), raw()) << "draw " << i;
  }
}

TEST(Batched, SatisfiesUint64GeneratorConcept) {
  static_assert(Uint64Generator<Batched<Xoshiro256, 256>>);
  static_assert(Uint64Generator<Batched<Xoshiro256, 1>>);
  // uniform_below composes without bias over a batched view too.
  Xoshiro256 raw(7);
  Batched<Xoshiro256, 64> batched(Xoshiro256(7));
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(uniform_below(batched, 10), uniform_below(raw, 10));
  }
}

TEST(Batched, RefillsRampGeometrically) {
  Batched<Xoshiro256, 16> batched(Xoshiro256(1));
  EXPECT_EQ(batched.buffered(), 0u);  // lazy: nothing drawn yet
  (void)batched();
  EXPECT_EQ(batched.buffered(), 7u);  // first block is small (8)
  for (int i = 0; i < 7; ++i) (void)batched();
  EXPECT_EQ(batched.buffered(), 0u);
  (void)batched();
  EXPECT_EQ(batched.buffered(), 15u);  // ramped to the full block
}

TEST(Batched, RefillFaultDegradesBlockSizeNotTheStream) {
  // The rng.block_refill site shrinks a refill to a single draw — a
  // GRACEFUL degradation: by the Batched ordering guarantee the VALUES
  // handed out are unchanged, only the refill cadence differs. This is
  // what makes the site safe to fuzz in cobra_chaos.
  util::fault::disarm_all();
  Xoshiro256 raw(23);
  Batched<Xoshiro256, 32> batched(Xoshiro256(23));
  util::fault::arm_spec(util::fault::FaultPlan::parse("rng.block_refill%0.5")
                            .specs[0],
                        /*seed=*/11);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(batched(), raw()) << "draw " << i;
  }
  EXPECT_GT(util::fault::fired("rng.block_refill"), 0u);
  EXPECT_GT(batched.refills(), 2000u / 32u);  // degraded refills happened
  util::fault::disarm_all();
}

TEST(Batched, InnerAdvancesPastBuffer) {
  // inner() draws come from beyond the buffered block: deterministic, and
  // no value is handed out twice.
  Xoshiro256 reference(9);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 48; ++i) stream.push_back(reference());

  Batched<Xoshiro256, 16> batched(Xoshiro256(9));
  const std::uint64_t first = batched();      // buffers stream[0..7]
  EXPECT_EQ(first, stream[0]);
  const std::uint64_t inner_draw = batched.inner()();  // stream[8]
  EXPECT_EQ(inner_draw, stream[8]);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(batched(), stream[i]);
  // Next refill starts after the inner draw.
  EXPECT_EQ(batched(), stream[9]);
}

}  // namespace
}  // namespace cobra::rng
