#include "rng/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "rng/pcg32.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::rng {
namespace {

TEST(UniformBelow, AlwaysInRange) {
  Xoshiro256 gen(1);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(uniform_below(gen, bound), bound);
    }
  }
}

TEST(UniformBelow, BoundOneIsZero) {
  Xoshiro256 gen(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(gen, 1), 0u);
}

TEST(UniformBelow, UniformOverSmallRange) {
  // Chi-square-style check over 10 buckets: each should be within 5% of
  // expected with 10^6 draws (sigma ~ 0.09%, so 5% is ~50 sigma of slack —
  // this catches gross bias, not subtle deviations).
  Xoshiro256 gen(3);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 1000000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[uniform_below(gen, kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.05);
  }
}

TEST(UniformBelow, NoModuloBiasAtPowerBoundary) {
  // bound = 2^63 + 1 is the worst case for naive modulo; verify the
  // high/low halves are balanced.
  Xoshiro256 gen(4);
  const std::uint64_t bound = (1ULL << 63) + 1;
  int high = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (uniform_below(gen, bound) >= (bound / 2)) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / kDraws, 0.5, 0.01);
}

TEST(UniformRange, InclusiveEndpoints) {
  Xoshiro256 gen(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = uniform_range(gen, 10, 12);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 12u);
    saw_lo |= (x == 10);
    saw_hi |= (x == 12);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformUnit, InHalfOpenInterval) {
  Xoshiro256 gen(6);
  double min_seen = 1.0, max_seen = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = uniform_unit(gen);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    min_seen = std::min(min_seen, u);
    max_seen = std::max(max_seen, u);
  }
  EXPECT_LT(min_seen, 0.001);
  EXPECT_GT(max_seen, 0.999);
}

TEST(UniformUnit, MeanIsHalf) {
  Xoshiro256 gen(7);
  double total = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) total += uniform_unit(gen);
  EXPECT_NEAR(total / kDraws, 0.5, 0.005);
}

TEST(Bernoulli, EdgeCases) {
  Xoshiro256 gen(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(gen, 0.0));
    EXPECT_TRUE(bernoulli(gen, 1.0));
    EXPECT_FALSE(bernoulli(gen, -0.5));
    EXPECT_TRUE(bernoulli(gen, 1.5));
  }
}

TEST(Bernoulli, MatchesProbability) {
  Xoshiro256 gen(9);
  for (const double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) hits += bernoulli(gen, p);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.01) << "p = " << p;
  }
}

TEST(CoinFlip, Fair) {
  Xoshiro256 gen(10);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += coin_flip(gen);
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(Pick, CoversAllElements) {
  Xoshiro256 gen(11);
  const std::vector<int> items{1, 2, 3, 4, 5};
  std::array<int, 6> counts{};
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<std::size_t>(pick(gen, std::span<const int>(items)))];
  }
  for (std::size_t v = 1; v <= 5; ++v) EXPECT_GT(counts[v], 1500);
}

TEST(Geometric, MeanMatches) {
  // E[Geometric(p)] = (1-p)/p for the failures-before-success convention.
  Xoshiro256 gen(12);
  for (const double p : {0.2, 0.5, 0.8}) {
    double total = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) {
      total += static_cast<double>(geometric(gen, p));
    }
    EXPECT_NEAR(total / kDraws, (1.0 - p) / p, 0.05) << "p = " << p;
  }
}

TEST(Geometric, POneIsZero) {
  Xoshiro256 gen(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric(gen, 1.0), 0u);
}

TEST(Exponential, MeanMatches) {
  Xoshiro256 gen(14);
  for (const double lambda : {0.5, 1.0, 3.0}) {
    double total = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) total += exponential(gen, lambda);
    EXPECT_NEAR(total / kDraws, 1.0 / lambda, 0.03 / lambda) << lambda;
  }
}

TEST(DistinctPair, AlwaysDistinctAndUniform) {
  Xoshiro256 gen(15);
  constexpr std::uint64_t kN = 5;
  std::array<std::array<int, kN>, kN> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto [a, b] = distinct_pair(gen, kN);
    ASSERT_NE(a, b);
    ASSERT_LT(a, kN);
    ASSERT_LT(b, kN);
    ++counts[a][b];
  }
  // 20 ordered pairs, each expected kDraws/20 = 5000.
  for (std::uint64_t a = 0; a < kN; ++a) {
    for (std::uint64_t b = 0; b < kN; ++b) {
      if (a == b) continue;
      EXPECT_NEAR(counts[a][b], 5000, 400) << a << "," << b;
    }
  }
}

TEST(Shuffle, IsPermutation) {
  Xoshiro256 gen(16);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  shuffle(gen, std::span<int>(v));
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original);  // 1/100! chance of false alarm
}

TEST(Shuffle, UniformFirstPosition) {
  Xoshiro256 gen(17);
  constexpr int kN = 6;
  std::array<int, kN> first_counts{};
  constexpr int kDraws = 60000;
  for (int d = 0; d < kDraws; ++d) {
    std::array<int, kN> v{};
    std::iota(v.begin(), v.end(), 0);
    shuffle(gen, std::span<int>(v));
    ++first_counts[static_cast<std::size_t>(v[0])];
  }
  for (const int c : first_counts) EXPECT_NEAR(c, kDraws / kN, 500);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Xoshiro256 gen(18);
  std::vector<std::uint64_t> out(10);
  sample_without_replacement(gen, 100, std::span<std::uint64_t>(out));
  std::sort(out.begin(), out.end());
  EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
  for (const auto x : out) EXPECT_LT(x, 100u);
}

TEST(SampleWithoutReplacement, FullRangeIsPermutation) {
  Xoshiro256 gen(19);
  std::vector<std::uint64_t> out(20);
  sample_without_replacement(gen, 20, std::span<std::uint64_t>(out));
  std::sort(out.begin(), out.end());
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(out[i], i);
}

TEST(SampleWithoutReplacement, MarginalsUniform) {
  Xoshiro256 gen(20);
  constexpr int kN = 10, kK = 3, kDraws = 100000;
  std::array<int, kN> counts{};
  std::vector<std::uint64_t> out(kK);
  for (int d = 0; d < kDraws; ++d) {
    sample_without_replacement(gen, kN, std::span<std::uint64_t>(out));
    for (const auto x : out) ++counts[x];
  }
  // Each element appears with probability k/n = 0.3.
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.3, 0.01);
  }
}

TEST(Samplers, WorkWithPcgAdapter) {
  Pcg32x64 gen(100, 200);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(uniform_below(gen, 17), 17u);
  }
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += coin_flip(gen);
  EXPECT_NEAR(heads / 10000.0, 0.5, 0.03);
}

}  // namespace
}  // namespace cobra::rng
