#include "rng/pcg32.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cobra::rng {
namespace {

TEST(Pcg32, Deterministic) {
  Pcg32 a(10, 3), b(10, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, StreamsDiverge) {
  Pcg32 a(10, 1), b(10, 2);
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++collisions;
  }
  // 32-bit outputs can collide by chance, but not often.
  EXPECT_LT(collisions, 3);
}

TEST(Pcg32, AdvanceMatchesStepping) {
  for (const std::uint64_t delta : {0ULL, 1ULL, 2ULL, 17ULL, 1000ULL, 123456ULL}) {
    Pcg32 a(55, 8), b(55, 8);
    for (std::uint64_t i = 0; i < delta; ++i) (void)a();
    b.advance(delta);
    EXPECT_EQ(a, b) << "delta = " << delta;
  }
}

TEST(Pcg32, StreamIsOddInternally) {
  // Construction forces the increment odd; equal streams compare equal.
  Pcg32 a(1, 42), b(1, 42);
  EXPECT_EQ(a.stream(), b.stream());
  EXPECT_EQ(a, b);
}

TEST(Pcg32x64, FullRangeAdapter) {
  EXPECT_EQ(Pcg32x64::min(), 0u);
  EXPECT_EQ(Pcg32x64::max(), ~0ULL);
  Pcg32x64 gen(7, 9);
  // Both halves of the output must vary over draws.
  std::set<std::uint32_t> highs, lows;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = gen();
    highs.insert(static_cast<std::uint32_t>(x >> 32));
    lows.insert(static_cast<std::uint32_t>(x));
  }
  EXPECT_GT(highs.size(), 90u);
  EXPECT_GT(lows.size(), 90u);
}

TEST(Pcg32x64, DeterministicAndSeeded) {
  Pcg32x64 a(3, 4), b(3, 4), c(3, 5);
  EXPECT_EQ(a(), b());
  Pcg32x64 a2(3, 4);
  Pcg32x64 c2(3, 5);
  EXPECT_NE(a2(), c2());
  (void)c;
}

TEST(Pcg32, BitBalance) {
  Pcg32 gen(123, 7);
  std::int64_t bits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) bits += __builtin_popcount(gen());
  EXPECT_NEAR(static_cast<double>(bits) / kDraws, 16.0, 0.1);
}

}  // namespace
}  // namespace cobra::rng
