#include "rng/splitmix64.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cobra::rng {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  }
}

TEST(SplitMix64, SeedsSeparate) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(splitmix64_next(s1), splitmix64_next(s2));
}

TEST(SplitMix64, NoShortCycle) {
  std::uint64_t s = 7;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(splitmix64_next(s)).second)
        << "repeat at step " << i;
  }
}

TEST(SplitMix64, MixIsStateless) {
  EXPECT_EQ(splitmix64_mix(123), splitmix64_mix(123));
  EXPECT_NE(splitmix64_mix(123), splitmix64_mix(124));
}

TEST(SplitMix64, MixAvalanche) {
  // Flipping one input bit should flip a substantial number of output bits.
  const std::uint64_t base = splitmix64_mix(0x12345678);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = splitmix64_mix(0x12345678ULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  // Ideal is 32 flips per bit = 2048 total; anything above 1600 is healthy.
  EXPECT_GT(total_flips, 1600);
}

TEST(DeriveSeed, GoldenValuesAreStable) {
  // derive_seed is load-bearing for every recorded artifact in this repo:
  // checkpoints, fault-plan schedules, and chunked round streams all
  // assume (seed, stream) -> value never changes across releases. These
  // pins turn an accidental algorithm change into a test failure instead
  // of silently invalidated baselines.
  EXPECT_EQ(derive_seed(0, 0), 7861790605204899667ULL);
  EXPECT_EQ(derive_seed(42, 7), 15047290621913413292ULL);
  EXPECT_EQ(derive_seed(0x9E3779B97F4A7C15ULL, 1), 10108979375994036173ULL);
}

TEST(DeriveSeed, StreamsDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seeds.insert(derive_seed(99, i)).second) << "collision at " << i;
  }
}

TEST(DeriveSeed, BaseSeedsDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t b = 0; b < 1000; ++b) {
    EXPECT_TRUE(seeds.insert(derive_seed(b, 0)).second);
  }
}

TEST(DeriveSeed, AdjacentStreamsUncorrelated) {
  // Adjacent stream seeds must not share obvious bit structure.
  int identical_low_bits = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t a = derive_seed(5, i);
    const std::uint64_t b = derive_seed(5, i + 1);
    if ((a & 0xFFFF) == (b & 0xFFFF)) ++identical_low_bits;
  }
  EXPECT_LT(identical_low_bits, 5);
}

TEST(SplitMix64Engine, SatisfiesUrbg) {
  SplitMix64 gen(11);
  EXPECT_EQ(SplitMix64::min(), 0u);
  EXPECT_EQ(SplitMix64::max(), ~0ULL);
  const auto a = gen();
  const auto b = gen();
  EXPECT_NE(a, b);
}

TEST(SplitMix64Engine, StateAdvances) {
  SplitMix64 gen(3);
  const auto s0 = gen.state();
  (void)gen();
  EXPECT_NE(gen.state(), s0);
}

}  // namespace
}  // namespace cobra::rng
