#include "rng/xoshiro256.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cobra::rng {
namespace {

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, SetStateRoundTripsMidStream) {
  // Checkpoint/resume leans on this: capturing state() mid-stream and
  // set_state()-ing it into a fresh engine must reproduce the remaining
  // stream exactly, from any position.
  Xoshiro256 source(2026);
  for (int i = 0; i < 137; ++i) (void)source();
  const auto snap = source.state();
  Xoshiro256 resumed(0);
  resumed.set_state(snap);
  EXPECT_EQ(resumed.state(), snap);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(resumed(), source()) << "diverged at post-restore draw " << i;
  }
}

TEST(Xoshiro256, SeedsSeparate) {
  Xoshiro256 a(1), b(2);
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256, ZeroSeedIsValid) {
  Xoshiro256 gen(0);
  const auto& s = gen.state();
  EXPECT_NE(s[0] | s[1] | s[2] | s[3], 0u);
  EXPECT_NE(gen(), gen());
}

TEST(Xoshiro256, NoShortCycle) {
  Xoshiro256 gen(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(seen.insert(gen()).second) << "repeat at " << i;
  }
}

TEST(Xoshiro256, JumpDisjointStreams) {
  Xoshiro256 a(9);
  Xoshiro256 b = a;
  b.jump();
  // The jumped stream must not collide with the original over a long prefix.
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 10000; ++i) from_a.insert(a());
  int collisions = 0;
  for (int i = 0; i < 10000; ++i) {
    if (from_a.contains(b())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256, EqualityComparesState) {
  Xoshiro256 a(4), b(4);
  EXPECT_EQ(a, b);
  (void)a();
  EXPECT_NE(a, b);
  (void)b();
  EXPECT_EQ(a, b);
}

TEST(Xoshiro256, BitBalance) {
  // Over many draws the average popcount should be close to 32.
  Xoshiro256 gen(77);
  std::int64_t bits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) bits += __builtin_popcountll(gen());
  const double mean = static_cast<double>(bits) / kDraws;
  EXPECT_NEAR(mean, 32.0, 0.1);
}

TEST(Xoshiro256, HighBitIsFair) {
  Xoshiro256 gen(31);
  int ones = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ones += static_cast<int>(gen() >> 63);
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.5, 0.01);
}

}  // namespace
}  // namespace cobra::rng
