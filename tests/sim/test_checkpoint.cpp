// Tests for checkpoint/resume: snapshot file integrity (truncation fuzz,
// checksum, magic/version), process state round trips (CobraWalk,
// GeneralizedCobraWalk incl. extinct, Gossip incl. mode cross-check),
// Runner periodic snapshotting, and the headline guarantee — a killed and
// resumed run reproduces the uninterrupted trajectory bit-identically at
// 1/2/8 threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/generalized_cobra.hpp"
#include "core/gossip.hpp"
#include "gen/registry.hpp"
#include "obs/manifest.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/checkpoint.hpp"
#include "sim/observers.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"
#include "util/checkpoint_io.hpp"
#include "util/fault.hpp"

namespace {

using namespace cobra;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();
  return {text.begin(), text.end()};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

struct CheckpointTest : ::testing::Test {
  void SetUp() override { util::fault::disarm_all(); }
  void TearDown() override { util::fault::disarm_all(); }
};

// ------------------------------------------------------ file integrity --

TEST_F(CheckpointTest, SnapshotFileRoundTrips) {
  const std::string path = temp_path("roundtrip.snap");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
  sim::write_snapshot_file(path, payload);
  EXPECT_TRUE(sim::snapshot_valid(path));
  EXPECT_EQ(sim::read_snapshot_file(path), payload);
}

TEST_F(CheckpointTest, MissingFileIsInvalidAndThrowsOnRead) {
  const std::string path = temp_path("never_written.snap");
  EXPECT_FALSE(sim::snapshot_valid(path));
  EXPECT_THROW((void)sim::read_snapshot_file(path), util::CheckpointError);
}

TEST_F(CheckpointTest, EveryTruncatedFilePrefixIsRejected) {
  const std::string path = temp_path("fuzz.snap");
  sim::write_snapshot_file(path, {10, 20, 30, 40, 50, 60, 70, 80});
  const std::vector<std::uint8_t> full = slurp(path);
  ASSERT_GT(full.size(), 24u);  // header + payload
  const std::string cut = temp_path("fuzz_cut.snap");
  for (std::size_t len = 0; len < full.size(); ++len) {
    dump(cut, {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_FALSE(sim::snapshot_valid(cut)) << "prefix length " << len;
    EXPECT_THROW((void)sim::read_snapshot_file(cut), util::CheckpointError)
        << "prefix length " << len;
  }
  dump(cut, full);  // the unmutilated file still reads
  EXPECT_TRUE(sim::snapshot_valid(cut));
}

TEST_F(CheckpointTest, EverySingleByteCorruptionIsRejected) {
  const std::string path = temp_path("corrupt.snap");
  sim::write_snapshot_file(path, {1, 1, 2, 3, 5, 8, 13, 21});
  const std::vector<std::uint8_t> full = slurp(path);
  const std::string bad = temp_path("corrupt_bad.snap");
  // Covers the magic, version, declared size, checksum, and payload bytes.
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::vector<std::uint8_t> mutated = full;
    mutated[i] ^= 0x01;
    dump(bad, mutated);
    EXPECT_FALSE(sim::snapshot_valid(bad)) << "flipped byte " << i;
  }
}

// ----------------------------------------------- process state round trips --

TEST_F(CheckpointTest, CobraWalkStateRoundTripsAndContinuesIdentically) {
  const graph::Graph g = gen::build_graph("rreg:n=128,d=4,seed=11");
  core::Engine gen(77);
  core::CobraWalk src(g, 0, 2);
  for (int i = 0; i < 12; ++i) src.step(gen);

  util::CheckpointWriter w;
  src.save_state(w);
  core::CobraWalk dst(g, 0, 2);
  util::CheckpointReader r(w.buffer());
  dst.restore_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(dst.round(), src.round());
  ASSERT_EQ(std::vector<core::Vertex>(dst.active().begin(), dst.active().end()),
            std::vector<core::Vertex>(src.active().begin(), src.active().end()));

  // Same randomness from here on => identical futures.
  core::Engine ga = gen, gb = gen;
  for (int i = 0; i < 8; ++i) {
    src.step(ga);
    dst.step(gb);
    ASSERT_EQ(
        std::vector<core::Vertex>(dst.active().begin(), dst.active().end()),
        std::vector<core::Vertex>(src.active().begin(), src.active().end()))
        << "diverged at continuation step " << i;
  }
}

TEST_F(CheckpointTest, CobraWalkRestoreRejectsCorruptFrontiers) {
  const graph::Graph g = gen::build_graph("ring:n=64");
  core::CobraWalk walk(g, 0, 2);
  const auto payload_with = [](std::vector<std::uint32_t> verts) {
    util::CheckpointWriter w;
    w.u64(3);  // round
    w.u64(9);  // samples
    w.u32_span(verts);
    return w.buffer();
  };
  for (const auto& verts : std::vector<std::vector<std::uint32_t>>{
           {5, 2},      // not ascending
           {2, 2, 5},   // duplicate
           {1, 90},     // out of range for n=64
           {},          // a cobra walk cannot be empty
       }) {
    const auto payload = payload_with(verts);
    util::CheckpointReader r(payload);
    EXPECT_THROW(walk.restore_state(r), util::CheckpointError);
  }
}

TEST_F(CheckpointTest, GeneralizedCobraExtinctStateRoundTrips) {
  const graph::Graph g = gen::build_graph("ring:n=32");
  core::GeneralizedCobraWalk src(
      g, 0, [](core::Vertex, std::uint64_t, core::Engine&) { return 0u; });
  core::Engine gen(4);
  src.step(gen);  // always-zero branching: extinct in one round
  ASSERT_TRUE(src.extinct());

  util::CheckpointWriter w;
  src.save_state(w);
  core::GeneralizedCobraWalk dst(
      g, 0, [](core::Vertex, std::uint64_t, core::Engine&) { return 0u; });
  util::CheckpointReader r(w.buffer());
  dst.restore_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(dst.extinct());
  EXPECT_EQ(dst.round(), src.round());
  EXPECT_TRUE(dst.active().empty());
}

TEST_F(CheckpointTest, GossipStateRoundTripsAndChecksMode) {
  const graph::Graph g = gen::build_graph("rreg:n=128,d=4,seed=3");
  core::Engine gen(9);
  core::Gossip src(g, 5, core::GossipMode::PushPull);
  for (int i = 0; i < 4; ++i) src.step(gen);

  util::CheckpointWriter w;
  src.save_state(w);
  core::Gossip dst(g, 5, core::GossipMode::PushPull);
  util::CheckpointReader r(w.buffer());
  dst.restore_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(dst.round(), src.round());
  EXPECT_EQ(dst.informed_count(), src.informed_count());
  // The rebuilt uninformed complement is exact, not just counted.
  EXPECT_EQ(dst.uninformed().size(), g.num_vertices() - dst.informed_count());
  for (const core::Vertex v : dst.uninformed()) {
    EXPECT_FALSE(dst.is_informed(v));
  }
  // Identical futures from the same engine state.
  core::Engine ga = gen, gb = gen;
  for (int i = 0; i < 6; ++i) {
    src.step(ga);
    dst.step(gb);
    ASSERT_EQ(dst.informed_count(), src.informed_count());
  }

  // Resuming a PushPull snapshot into a Push process would silently change
  // the trajectory — the mode tag catches it.
  core::Gossip wrong_mode(g, 5, core::GossipMode::Push);
  util::CheckpointReader r2(w.buffer());
  EXPECT_THROW(wrong_mode.restore_state(r2), util::CheckpointError);
}

// ------------------------------------------------------- runner glue --

TEST_F(CheckpointTest, SnapshottingRunMatchesPlainRun) {
  const graph::Graph g = gen::build_graph("rreg:n=128,d=4,seed=21");
  core::Engine gen_plain(55), gen_snap(55);
  core::CobraWalk plain(g, 0, 2), snap(g, 0, 2);
  sim::CoverStop cover_plain, cover_snap;
  const auto a = sim::Runner(1u << 18).run(plain, gen_plain, cover_plain);
  const sim::SnapshotPolicy policy{temp_path("periodic.snap"), 8};
  const auto b =
      sim::Runner(1u << 18).run_snapshotting(snap, gen_snap, policy, cover_snap);
  ASSERT_TRUE(a.stopped);
  ASSERT_TRUE(b.stopped);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(cover_plain.covered_count(), cover_snap.covered_count());
  EXPECT_EQ(gen_plain(), gen_snap());  // snapshotting consumed no randomness
}

TEST_F(CheckpointTest, KilledRunResumesBitIdenticallyAcrossThreadCounts) {
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=7");
  constexpr std::size_t kChunk = 64;
  const std::string snap = temp_path("resume.snap");

  struct Trace {
    std::uint64_t rounds = 0;
    std::vector<std::uint64_t> visits;
  };
  // Reference: the uninterrupted serial run.
  const Trace reference = [&] {
    core::CobraWalk walk(g, 0, 2);
    walk.engine().options() = {kChunk, static_cast<std::size_t>(-1), nullptr};
    core::Engine gen(1234);
    sim::CoverStop cover;
    sim::FirstVisitTimes visits;
    const auto r = sim::Runner(1u << 18).run(walk, gen, cover, visits);
    EXPECT_TRUE(r.stopped);
    return Trace{r.rounds, visits.times()};
  }();
  const std::uint64_t kill_at = reference.rounds / 2;
  ASSERT_GT(kill_at, 0u);

  par::ThreadPool pool1(1), pool2(2), pool8(8);
  for (par::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    // Phase 1: run to the kill point with per-round snapshots, then "die"
    // (the budget models the kill — the process object is thrown away).
    {
      core::CobraWalk walk(g, 0, 2);
      walk.engine().options() = {kChunk, 1, pool};
      core::Engine gen(1234);
      sim::CoverStop cover;
      sim::FirstVisitTimes visits;
      const auto r = sim::Runner(kill_at).run_snapshotting(
          walk, gen, sim::SnapshotPolicy{snap, 1}, cover, visits);
      ASSERT_FALSE(r.stopped);
      ASSERT_EQ(r.rounds, kill_at);
    }
    ASSERT_TRUE(sim::snapshot_valid(snap));

    // Phase 2: fresh process, engine (wrong seed on purpose — the snapshot
    // must overwrite it), and hooks; resume and run to cover.
    core::CobraWalk walk(g, 0, 2);
    walk.engine().options() = {kChunk, 1, pool};
    core::Engine gen(999);
    sim::CoverStop cover;
    sim::FirstVisitTimes visits;
    const auto r = sim::Runner(1u << 18).resume_from(
        walk, gen, sim::SnapshotPolicy{snap, 0}, cover, visits);
    EXPECT_TRUE(r.stopped);
    EXPECT_TRUE(cover.complete());
    // The acceptance bar: exact cover round and exact visit order.
    EXPECT_EQ(r.rounds, reference.rounds);
    EXPECT_EQ(visits.times(), reference.visits);
  }
}

TEST_F(CheckpointTest, BudgetCoversTheWholeRunNotJustTheResumedHalf) {
  const graph::Graph g = gen::build_graph("ring:n=256");
  const std::string snap = temp_path("budget.snap");
  core::Engine gen(3);
  core::CobraWalk walk(g, 0, 2);
  sim::CoverStop cover;
  const auto first = sim::Runner(10).run_snapshotting(
      walk, gen, sim::SnapshotPolicy{snap, 5}, cover);
  ASSERT_FALSE(first.stopped);
  ASSERT_EQ(first.rounds, 10u);
  // Resuming under the SAME budget grants zero additional rounds.
  core::CobraWalk walk2(g, 0, 2);
  core::Engine gen2(3);
  sim::CoverStop cover2;
  const auto second = sim::Runner(10).resume_from(
      walk2, gen2, sim::SnapshotPolicy{snap, 0}, cover2);
  EXPECT_FALSE(second.stopped);
  EXPECT_EQ(second.rounds, 10u);
  EXPECT_EQ(walk2.round(), 10u);  // restored, not re-stepped
}

TEST_F(CheckpointTest, ObserverPackMismatchIsDetectedOnResume) {
  const graph::Graph g = gen::build_graph("ring:n=64");
  const std::string snap = temp_path("mismatch.snap");
  core::Engine gen(2);
  core::CobraWalk walk(g, 0, 2);
  sim::CoverStop cover;
  sim::GrowthCurve curve;
  cover.start(walk);
  curve.start(walk);
  sim::Runner::save_snapshot(walk, gen, 0, snap, cover, curve);
  // Resume WITHOUT the curve: its bytes are left over — refused, because
  // silently misaligned stop/observer state is worse than a dead snapshot.
  core::CobraWalk walk2(g, 0, 2);
  core::Engine gen2(2);
  sim::CoverStop cover2;
  EXPECT_THROW((void)sim::Runner(100).resume_from(
                   walk2, gen2, sim::SnapshotPolicy{snap, 0}, cover2),
               util::CheckpointError);
}

// ------------------------------------------------------ fault injection --

TEST_F(CheckpointTest, PeriodicSnapshotFaultWarnsAndRunContinues) {
  const graph::Graph g = gen::build_graph("rreg:n=128,d=4,seed=5");
  const std::string snap = temp_path("never_lands.snap");
  util::fault::arm("checkpoint.write");
  core::Engine gen_faulty(66), gen_plain(66);
  core::CobraWalk faulty(g, 0, 2), plain(g, 0, 2);
  sim::CoverStop cover_faulty, cover_plain;
  const auto a = sim::Runner(1u << 18).run_snapshotting(
      faulty, gen_faulty, sim::SnapshotPolicy{snap, 4}, cover_faulty);
  const auto b = sim::Runner(1u << 18).run(plain, gen_plain, cover_plain);
  // Graceful degradation: every snapshot failed, the computation did not.
  EXPECT_TRUE(a.stopped);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_GT(util::fault::hits("checkpoint.write"), 0u);
  EXPECT_FALSE(sim::snapshot_valid(snap));
}

TEST_F(CheckpointTest, TornWriteLandsOnDiskButIsRejectedOnRead) {
  // checkpoint.torn_write (HARD): the payload truncates mid-write while
  // the header still claims the full size, and the atomic rename lands
  // the torso on the target path. The write itself reports success (the
  // torn write models a lying disk, not a detected error) — the READ
  // side must reject the file via the size/checksum checks.
  const std::string snap = temp_path("torn.snap");
  util::fault::arm("checkpoint.torn_write");
  sim::write_snapshot_file(snap, {9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  util::fault::disarm_all();
  EXPECT_TRUE(std::ifstream(snap).good()) << "torn write never landed";
  EXPECT_FALSE(sim::snapshot_valid(snap));
  EXPECT_THROW((void)sim::read_snapshot_file(snap), util::CheckpointError);
}

TEST_F(CheckpointTest, SnapshotHeaderCarriesTheBuildManifest) {
  // v2 headers stamp the writing build's manifest so resume can warn on a
  // cross-build restore instead of silently mixing binaries.
  const std::string snap = temp_path("stamped.snap");
  sim::write_snapshot_file(snap, {42});
  sim::SnapshotInfo info;
  EXPECT_EQ(sim::read_snapshot_file(snap, &info),
            std::vector<std::uint8_t>{42});
  const obs::Manifest m = obs::current_manifest();
  EXPECT_EQ(info.version, sim::kSnapshotVersion);
  EXPECT_EQ(info.git_sha, m.git_sha);
  EXPECT_EQ(info.build_type, m.build_type);
}

TEST_F(CheckpointTest, ResumeFromFaultyReadFailsLoudly) {
  const std::string snap = temp_path("read_fault.snap");
  sim::write_snapshot_file(snap, {1, 2, 3});
  util::fault::arm("checkpoint.read");
  EXPECT_THROW((void)sim::read_snapshot_file(snap), util::CheckpointError);
  EXPECT_FALSE(sim::snapshot_valid(snap));
  util::fault::disarm_all();
  EXPECT_EQ(sim::read_snapshot_file(snap).size(), 3u);  // file was never harmed
}

}  // namespace
