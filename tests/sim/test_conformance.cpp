#include "sim/conformance.hpp"

#include <gtest/gtest.h>

// The ledger itself is compile-time (including this header IS the test);
// these runtime checks just pin the concept's behavior on shapes that are
// easy to get wrong, so a loosened concept fails a test and not only a
// code review.

namespace {

using cobra::sim::Checkpointable;
using cobra::sim::Process;

struct NotAProcess {};

// Each missing/broken requirement must individually break conformance.
struct NoStep {
  [[nodiscard]] std::span<const cobra::core::Vertex> active() const {
    return {};
  }
  [[nodiscard]] std::uint64_t round() const { return 0; }
  [[nodiscard]] std::uint32_t n() const { return 0; }
};

struct NonConstActive {
  void step(cobra::core::Engine&) {}
  [[nodiscard]] std::span<const cobra::core::Vertex> active() { return {}; }
  [[nodiscard]] std::uint64_t round() const { return 0; }
  [[nodiscard]] std::uint32_t n() const { return 0; }
};

struct Minimal {
  void step(cobra::core::Engine&) {}
  [[nodiscard]] std::span<const cobra::core::Vertex> active() const {
    return {};
  }
  [[nodiscard]] std::uint64_t round() const { return 0; }
  [[nodiscard]] std::uint32_t n() const { return 0; }
};

TEST(Conformance, ConceptShape) {
  static_assert(!Process<NotAProcess>);
  static_assert(!Process<NoStep>);
  static_assert(!Process<NonConstActive>);
  static_assert(Process<Minimal>);
  static_assert(!Checkpointable<Minimal>);
  SUCCEED();
}

TEST(Conformance, LedgerIsIncluded) {
  // Compiling this TU evaluated every assert in conformance.hpp.
  SUCCEED();
}

}  // namespace
