// Satellite cross-check: sim::Runner's cover/hitting measurements on tiny
// graphs must agree with the EXACT tables (core::ExactCobra's subset-chain
// solve and graph::exact_rw_hitting_times' linear system). An off-by-one
// in the Runner's round accounting — counting the initial state as a step,
// or missing the final round — shifts every mean by ~1 and fails these.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/cobra_walk.hpp"
#include "core/exact_cobra.hpp"
#include "core/random_walk.hpp"
#include "gen/registry.hpp"
#include "graph/exact_hitting.hpp"
#include "parallel/monte_carlo.hpp"
#include "sim/runner.hpp"
#include "stats/summary.hpp"

namespace {

using namespace cobra;

/// Serial Monte-Carlo mean of `trial` (run_trials_serial keeps this test
/// schedule-independent and cheap to reason about).
template <typename Trial>
stats::Summary serial_mean(std::uint32_t trials, std::uint64_t seed,
                           Trial&& trial) {
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = trials;
  return stats::summarize(par::run_trials_serial(opts, trial));
}

/// |mean - exact| within 5 standard errors (seeded runs, so this is a
/// fixed outcome, not a flaky bound; 5 sigma leaves huge slack).
void expect_agrees(const stats::Summary& s, double exact,
                   const std::string& what) {
  EXPECT_LE(std::abs(s.mean - exact), 5.0 * s.sem + 1e-9)
      << what << ": mean " << s.mean << " vs exact " << exact << " (sem "
      << s.sem << ")";
}

TEST(ExactCrossCheck, CobraCoverOnTinyGraphsMatchesExactTables) {
  for (const std::string& spec :
       {std::string("ring:n=6"), std::string("complete:n=5"),
        std::string("path:n=5")}) {
    const graph::Graph g = gen::build_graph(spec);
    const core::ExactCobra exact(g, 2);
    const double expected = exact.expected_cover_time(0);
    const auto measured = serial_mean(6000, 0x5E1, [&](core::Engine& gen,
                                                       std::uint32_t) {
      core::CobraWalk walk(g, 0, 2);
      return static_cast<double>(sim::run_cover(walk, gen).rounds);
    });
    expect_agrees(measured, expected, spec + " cover");
  }
}

TEST(ExactCrossCheck, CobraHittingMatchesExactTables) {
  const graph::Graph g = gen::build_graph("ring:n=8");
  const core::ExactCobra exact(g, 2);
  const core::Vertex target = 4;  // the antipode
  const double expected = exact.expected_hitting_time(0, target);
  const auto measured =
      serial_mean(6000, 0x5E2, [&](core::Engine& gen, std::uint32_t) {
        core::CobraWalk walk(g, 0, 2);
        return static_cast<double>(sim::run_hit(walk, target, gen).rounds);
      });
  expect_agrees(measured, expected, "ring:n=8 hit 0->4");
}

TEST(ExactCrossCheck, RandomWalkHitObserverMatchesLinearSystem) {
  // The k=1 degenerate case against the independent exact baseline
  // (graph/exact_hitting's dense solve, not the subset chain).
  const graph::Graph g = gen::build_graph("ring:n=8");
  const core::Vertex target = 3;
  const double expected = graph::exact_rw_hitting_times(g, target)[0];
  EXPECT_DOUBLE_EQ(expected, 3.0 * (8.0 - 3.0));  // cycle closed form
  const auto measured =
      serial_mean(8000, 0x5E3, [&](core::Engine& gen, std::uint32_t) {
        core::RandomWalk walk(g, 0);
        return static_cast<double>(sim::run_hit(walk, target, gen).rounds);
      });
  expect_agrees(measured, expected, "rw ring:n=8 hit 0->3");
}

TEST(ExactCrossCheck, FirstVisitObserverAgreesWithHitStop) {
  // The FirstVisitTimes observer must assign the target the same round the
  // HitTarget stop rule fires at — same trajectory, two accountings.
  const graph::Graph g = gen::build_graph("ring:n=8");
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    core::Engine gen_a(seed), gen_b(seed);
    core::CobraWalk walk_a(g, 0, 2);
    const auto hit = sim::run_hit(walk_a, 5, gen_a);
    ASSERT_TRUE(hit.stopped);
    core::CobraWalk walk_b(g, 0, 2);
    sim::FirstVisitTimes visits;
    sim::CoverStop cover;
    const auto covered = sim::Runner().run(walk_b, gen_b, cover, visits);
    ASSERT_TRUE(covered.stopped);
    EXPECT_LE(hit.rounds, covered.rounds);
    EXPECT_EQ(visits.time_of(5), hit.rounds);
  }
}

}  // namespace
