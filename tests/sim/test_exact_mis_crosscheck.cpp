/// Exact cross-checks for the greedy MIS process at n <= 10: a brute-force
/// reference model replays the published round rule (hashed priorities,
/// strict local minima win, winners + neighbors leave) with plain set
/// arithmetic, and the engine-backed process must match it round for round
/// over pinned seeds. The final set is additionally checked against the
/// full enumeration of maximal independent sets.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/greedy_mis.hpp"
#include "graph/generators.hpp"
#include "rng/splitmix64.hpp"

namespace cobra {
namespace {

using core::Engine;
using core::GreedyMIS;
using graph::Graph;
using graph::Vertex;

/// One reference round on plain sets: the specification, free of engine,
/// frontier representation, and threading concerns.
void ref_step(const Graph& g, std::set<Vertex>& active, std::set<Vertex>& mis,
              std::uint64_t round_seed) {
  std::vector<Vertex> winners;
  for (const Vertex v : active) {
    const std::uint64_t pv = rng::derive_seed(round_seed, v);
    bool minimal = true;
    for (const Vertex u : g.neighbors(v)) {
      if (u == v || !active.contains(u)) continue;
      const std::uint64_t pu = rng::derive_seed(round_seed, u);
      if (pu < pv || (pu == pv && u < v)) minimal = false;
    }
    if (minimal) winners.push_back(v);
  }
  for (const Vertex w : winners) {
    mis.insert(w);
    active.erase(w);
    for (const Vertex u : g.neighbors(w)) active.erase(u);
  }
}

/// Every maximal independent set of g, by subset enumeration (n <= 10).
std::set<std::set<Vertex>> all_maximal_independent_sets(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  std::set<std::set<Vertex>> result;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool independent = true;
    for (Vertex v = 0; v < n && independent; ++v) {
      if (!(mask & (1u << v))) continue;
      for (const Vertex u : g.neighbors(v)) {
        if (u != v && (mask & (1u << u))) independent = false;
      }
    }
    if (!independent) continue;
    bool maximal = true;
    for (Vertex v = 0; v < n && maximal; ++v) {
      if (mask & (1u << v)) continue;
      bool dominated = false;
      for (const Vertex u : g.neighbors(v)) {
        if (u != v && (mask & (1u << u))) dominated = true;
      }
      if (!dominated) maximal = false;
    }
    if (!maximal) continue;
    std::set<Vertex> s;
    for (Vertex v = 0; v < n; ++v) {
      if (mask & (1u << v)) s.insert(v);
    }
    result.insert(s);
  }
  return result;
}

struct TinyCase {
  std::string name;
  std::function<Graph()> make_graph;
};

std::vector<TinyCase> tiny_graphs() {
  return {
      {"cycle5", [] { return graph::make_cycle(5); }},
      {"cycle9", [] { return graph::make_cycle(9); }},
      {"cycle10", [] { return graph::make_cycle(10); }},
      {"path7", [] { return graph::make_path(7); }},
      {"complete6", [] { return graph::make_complete(6); }},
      {"star9", [] { return graph::make_star(9); }},
      {"grid3x3", [] { return graph::make_grid(2, 3); }},
      {"tree2x3", [] { return graph::make_kary_tree(2, 3); }},
  };
}

class ExactMisCrosscheck : public ::testing::TestWithParam<TinyCase> {};

TEST_P(ExactMisCrosscheck, TrajectoryMatchesReferenceModelOverPinnedSeeds) {
  const Graph g = GetParam().make_graph();
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    GreedyMIS mis(g);
    Engine gen(seed), twin(seed);
    std::set<Vertex> ref_active;
    for (Vertex v = 0; v < g.num_vertices(); ++v) ref_active.insert(v);
    std::set<Vertex> ref_mis;
    int guard = 0;
    while (!mis.done()) {
      ASSERT_LT(guard++, 1000);
      const std::uint64_t round_seed = twin();  // the one draw per round
      mis.step(gen);
      ref_step(g, ref_active, ref_mis, round_seed);
      const auto active = mis.active();
      ASSERT_EQ(std::set<Vertex>(active.begin(), active.end()), ref_active)
          << "seed " << seed << " round " << mis.round();
      const auto m = mis.mis();
      ASSERT_EQ(std::set<Vertex>(m.begin(), m.end()), ref_mis)
          << "seed " << seed << " round " << mis.round();
    }
    EXPECT_TRUE(ref_active.empty()) << "seed " << seed;
  }
}

TEST_P(ExactMisCrosscheck, FinalSetIsAnEnumeratedMaximalIndependentSet) {
  const Graph g = GetParam().make_graph();
  const auto legal = all_maximal_independent_sets(g);
  ASSERT_FALSE(legal.empty());
  std::set<std::set<Vertex>> seen;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    GreedyMIS mis(g);
    Engine gen(seed);
    for (int guard = 0; guard < 1000 && !mis.done(); ++guard) mis.step(gen);
    ASSERT_TRUE(mis.done());
    const auto m = mis.mis();
    const std::set<Vertex> result(m.begin(), m.end());
    EXPECT_TRUE(legal.contains(result)) << "seed " << seed;
    seen.insert(result);
  }
  // Unless the graph pins the answer (one legal MIS), the seeds must reach
  // more than one of them — the randomness is live.
  if (legal.size() > 1) {
    EXPECT_GT(seen.size(), 1u) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(TinyGraphs, ExactMisCrosscheck,
                         ::testing::ValuesIn(tiny_graphs()),
                         [](const ::testing::TestParamInfo<TinyCase>& tpi) {
                           return tpi.param.name;
                         });

}  // namespace
}  // namespace cobra
