/// Pins sim::ExcursionStop + Runner against MetropolisWalk's internal
/// return-time accounting, draw for draw: the same engine seed must give
/// the SAME measured return time (and the same step count) through both
/// paths, including the budget-exhausted and completed-early endings. This
/// is what lets the metropolis_return bench run through the Runner without
/// changing a single number.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "core/metropolis_walk.hpp"
#include "gen/registry.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"

namespace cobra {
namespace {

using core::Engine;
using core::MetropolisWalk;

double runner_return_time(const graph::Graph& g, core::Vertex target,
                          Engine& gen, std::uint32_t excursions,
                          std::uint64_t max_steps, std::uint64_t* steps_out) {
  MetropolisWalk walk(g, target);
  sim::ExcursionStop stop(target, excursions);
  const auto run = sim::Runner(max_steps).run(walk, gen, stop);
  if (steps_out != nullptr) *steps_out = run.rounds;
  if (stop.completed() == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(run.rounds) /
         static_cast<double>(stop.completed());
}

TEST(ExcursionCrosscheck, MatchesMeasureReturnTimePerSeed) {
  const std::vector<std::string> specs = {
      "ring:n=16", "complete:n=12", "hypercube:dims=4",
      "rreg:n=24,d=4,seed=9"};
  for (const auto& spec : specs) {
    const graph::Graph g = gen::build_graph(spec);
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      MetropolisWalk walk(g, 0);
      Engine gen_a(seed), gen_b(seed);
      const double direct =
          walk.measure_return_time(gen_a, /*excursions=*/50,
                                   /*max_steps=*/1 << 16);
      std::uint64_t steps = 0;
      const double via_runner =
          runner_return_time(g, 0, gen_b, 50, 1 << 16, &steps);
      ASSERT_EQ(direct, via_runner) << spec << " seed " << seed;
      // Identical draw streams: both engines end in the same state.
      ASSERT_EQ(gen_a.state(), gen_b.state()) << spec << " seed " << seed;
    }
  }
}

TEST(ExcursionCrosscheck, BudgetExhaustionAgreesToo) {
  // A budget far too small for 10^6 excursions: both paths must report the
  // same truncated ratio from the same partial tally.
  const graph::Graph g = gen::build_graph("ring:n=32");
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    MetropolisWalk walk(g, 0);
    Engine gen_a(seed), gen_b(seed);
    const double direct =
        walk.measure_return_time(gen_a, 1000000, /*max_steps=*/500);
    std::uint64_t steps = 0;
    const double via_runner = runner_return_time(g, 0, gen_b, 1000000, 500,
                                                 &steps);
    ASSERT_EQ(direct, via_runner) << "seed " << seed;
    ASSERT_EQ(steps, 500u);
  }
}

TEST(ExcursionCrosscheck, HoldingStillAtHomeCompletesLengthOneExcursions) {
  // The E_v[T_v+] convention: a rejected Metropolis move at home still ends
  // an excursion. On the complete graph the target accepts everything, so
  // every step is one excursion of length 1 and the ratio is pinned.
  const graph::Graph g = gen::build_graph("ring:n=8");
  MetropolisWalk walk(g, 3);
  sim::ExcursionStop stop(3, 10);
  Engine gen(4);
  const auto run = sim::Runner(std::uint64_t{1} << 20).run(walk, gen, stop);
  EXPECT_EQ(stop.completed(), 10u);
  EXPECT_GE(run.rounds, 10u);
  EXPECT_EQ(stop.home(), 3u);
  EXPECT_EQ(stop.target(), 10u);
}

}  // namespace
}  // namespace cobra
