// Tests for sim::Runner composition: stop rules, observers, budget
// semantics, zero-observer equivalence with the raw step loop, and
// bit-identical trajectories through the Runner at 1/2/8 threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/coalescing_walk.hpp"
#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "core/generalized_cobra.hpp"
#include "core/hitting_time.hpp"
#include "core/gossip.hpp"
#include "core/grid_drift.hpp"
#include "core/random_walk.hpp"
#include "core/sis_epidemic.hpp"
#include "core/walt.hpp"
#include "gen/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/observers.hpp"
#include "sim/process.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"

namespace {

using namespace cobra;

// Every shipped process models the concept (GridDrift via its adapter).
static_assert(sim::Process<core::CobraWalk>);
static_assert(sim::Process<core::GeneralizedCobraWalk>);
static_assert(sim::Process<core::Gossip>);
static_assert(sim::Process<core::RandomWalk>);
static_assert(sim::Process<core::SisEpidemic>);
static_assert(sim::Process<core::Walt>);
static_assert(sim::Process<sim::GridDriftProcess>);

TEST(Runner, ZeroObserverCoverMatchesRawStepLoop) {
  const graph::Graph g = gen::build_graph("rreg:n=128,d=4,seed=11");
  // Raw loop: the exact core::run_to_cover idiom.
  core::Engine gen_raw(77);
  core::CobraWalk raw(g, 0, 2);
  const auto expected = core::run_to_cover(raw, gen_raw, 1u << 20);
  // Runner with no observers.
  core::Engine gen_sim(77);
  core::CobraWalk walk(g, 0, 2);
  sim::CoverStop cover;
  const auto r = sim::Runner(1u << 20).run(walk, gen_sim, cover);
  EXPECT_TRUE(expected.covered);
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(expected.steps, r.rounds);
  EXPECT_EQ(expected.covered_count, cover.covered_count());
  // Identical engine state afterwards: the Runner consumed exactly the
  // same randomness as the raw loop.
  EXPECT_EQ(gen_raw(), gen_sim());
}

TEST(Runner, HitTargetMatchesRawHitLoop) {
  const graph::Graph g = gen::build_graph("ring:n=64");
  core::Engine gen_raw(5);
  core::RandomWalk raw(g, 0);
  const auto expected = core::run_to_hit(raw, 32, gen_raw, 1u << 22);
  core::Engine gen_sim(5);
  core::RandomWalk walk(g, 0);
  const auto r = sim::run_hit(walk, 32, gen_sim, 1u << 22);
  ASSERT_TRUE(expected.hit);
  ASSERT_TRUE(r.stopped);
  EXPECT_EQ(expected.steps, r.rounds);
}

TEST(Runner, HitTargetAlreadyActiveStopsAtZeroRounds) {
  const graph::Graph g = gen::build_graph("ring:n=16");
  core::Engine gen(1);
  core::RandomWalk walk(g, 7);
  const auto r = sim::run_hit(walk, 7, gen, 100);
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(walk.round(), 0u);  // never stepped
}

TEST(Runner, BudgetExhaustionReportsNotStopped) {
  const graph::Graph g = gen::build_graph("ring:n=256");
  core::Engine gen(3);
  core::RandomWalk walk(g, 0);
  sim::CoverStop cover;
  const auto r = sim::Runner(5).run(walk, gen, cover);
  EXPECT_FALSE(r.stopped);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_FALSE(cover.complete());
  EXPECT_GT(cover.covered_count(), 0u);
}

TEST(Runner, FixedRoundsCountsFromRunStartNotProcessBirth) {
  const graph::Graph g = gen::build_graph("ring:n=32");
  core::Engine gen(9);
  core::RandomWalk walk(g, 0);
  const sim::Runner runner;
  runner.run(walk, gen, sim::FixedRounds(10));
  EXPECT_EQ(walk.round(), 10u);
  // Second run on the same (already-stepped) process: 10 MORE rounds.
  runner.run(walk, gen, sim::FixedRounds(10));
  EXPECT_EQ(walk.round(), 20u);
}

TEST(Runner, ExtinctionStopsFaultySchedules) {
  const graph::Graph g = gen::build_graph("ring:n=64");
  // Always-zero branching: extinct after the very first step.
  core::GeneralizedCobraWalk walk(
      g, 0, [](core::Vertex, std::uint64_t, core::Engine&) { return 0u; });
  core::Engine gen(4);
  sim::CoverStop cover;
  sim::Extinction extinct;
  const auto r =
      sim::Runner(1000).run(walk, gen, sim::any_of(cover, extinct));
  EXPECT_TRUE(r.stopped);
  EXPECT_TRUE(walk.extinct());
  EXPECT_FALSE(cover.complete());
  EXPECT_EQ(r.rounds, 1u);
}

TEST(Runner, MultipleObserversAndStopRulesCompose) {
  const graph::Graph g = gen::build_graph("rreg:n=256,d=4,seed=21");
  core::Engine gen(13);
  core::CobraWalk walk(g, 0, 2);
  sim::CoverStop cover;
  sim::FixedRounds horizon(1u << 14);
  sim::GrowthCurve curve;
  sim::FirstVisitTimes visits;
  sim::SizeHistogram hist;
  sim::CollisionDetector collisions;
  const auto r = sim::Runner(1u << 15).run(
      walk, gen, sim::any_of(cover, horizon), curve, visits, hist, collisions);
  ASSERT_TRUE(r.stopped);
  ASSERT_TRUE(cover.complete());
  // One entry per round incl. the initial state, everywhere.
  EXPECT_EQ(curve.sizes().size(), r.rounds + 1);
  EXPECT_EQ(hist.samples().size(), r.rounds + 1);
  EXPECT_EQ(curve.sizes().front(), 1u);  // the start vertex
  // First-visit view agrees with the cover stop: every vertex visited and
  // the last first-visit IS the cover round.
  for (core::Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(visits.visited(v));
  }
  EXPECT_EQ(visits.last_first_visit(), r.rounds);
  EXPECT_EQ(visits.time_of(0), 0u);
}

TEST(Runner, GrowthCurveMatchesManualStepSizes) {
  const graph::Graph g = gen::build_graph("rreg:n=64,d=4,seed=3");
  core::Engine gen_a(42), gen_b(42);
  core::CobraWalk manual(g, 0, 2);
  std::vector<std::size_t> expected = {manual.active().size()};
  for (int t = 0; t < 20; ++t) {
    manual.step(gen_a);
    expected.push_back(manual.active().size());
  }
  core::CobraWalk walk(g, 0, 2);
  sim::GrowthCurve curve;
  sim::Runner().run(walk, gen_b, sim::FixedRounds(20), curve);
  EXPECT_EQ(curve.sizes(), expected);
}

TEST(Runner, BitIdenticalTrajectoriesAcrossThreadCounts) {
  const graph::Graph g = gen::build_graph("rreg:n=512,d=4,seed=7");
  constexpr std::size_t kChunk = 64;
  struct Trace {
    std::uint64_t rounds = 0;
    std::vector<std::size_t> sizes;
    std::vector<std::uint64_t> visits;
  };
  auto run_with = [&](par::ThreadPool* pool) {
    core::CobraWalk walk(g, 0, 2);
    if (pool != nullptr) {
      // Pinned pool + threshold 1: every round takes the parallel path.
      walk.engine().options() = {kChunk, 1, pool};
    } else {
      // Same chunking, forced in-line path — trajectories are a function
      // of the chunk size, so the serial reference must pin it too.
      walk.engine().options() = {kChunk, static_cast<std::size_t>(-1),
                                 nullptr};
    }
    core::Engine gen(1234);
    sim::CoverStop cover;
    sim::GrowthCurve curve;
    sim::FirstVisitTimes visits;
    const auto r = sim::Runner(1u << 18).run(walk, gen, cover, curve, visits);
    EXPECT_TRUE(r.stopped);
    return Trace{r.rounds, curve.sizes(), visits.times()};
  };
  const Trace serial = run_with(nullptr);
  par::ThreadPool pool1(1), pool2(2), pool8(8);
  for (par::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    const Trace t = run_with(pool);
    EXPECT_EQ(serial.rounds, t.rounds);
    EXPECT_EQ(serial.sizes, t.sizes);
    EXPECT_EQ(serial.visits, t.visits);
  }
}

TEST(Runner, GridDriftAdapterHitsOriginLikeRunToOrigin) {
  core::Engine gen_raw(6), gen_sim(6);
  core::GridDriftWalk raw(3, 8, 64);
  const std::uint64_t expected = raw.run_to_origin(gen_raw, 1u << 20);
  sim::GridDriftProcess process(3, 8, 64);
  const auto r = sim::run_hit(process, 0, gen_sim, 1u << 20);
  ASSERT_TRUE(r.stopped);
  EXPECT_EQ(expected, r.rounds);
  EXPECT_TRUE(process.walk().at_origin());
}

TEST(Runner, UntilPredicateStopsSis) {
  const graph::Graph g = gen::build_graph("complete:n=32");
  core::Engine gen(8);
  core::SisEpidemic epi(g, 0, 2);
  const auto r = sim::Runner(1u << 16).run(
      epi, gen, sim::until([](const core::SisEpidemic& e) {
        return e.everyone_exposed();
      }));
  EXPECT_TRUE(r.stopped);
  EXPECT_TRUE(epi.everyone_exposed());
  EXPECT_EQ(epi.round(), r.rounds);
}

TEST(Runner, OccupancyCounterCountsPostStepRounds) {
  const graph::Graph g = gen::build_graph("complete:n=4");
  core::Engine gen(2);
  core::RandomWalk walk(g, 0);
  sim::OccupancyCounter occupancy(1);
  sim::Runner().run(walk, gen, sim::FixedRounds(3000), occupancy);
  EXPECT_EQ(occupancy.rounds(), 3000u);
  // K_4 stationary mass at any one vertex is 1/4.
  EXPECT_NEAR(occupancy.fraction(), 0.25, 0.05);
}

TEST(Runner, ReplicateMatchesMonteCarloContract) {
  const graph::Graph g = gen::build_graph("ring:n=32");
  const auto trial = [&](core::Engine& gen) {
    core::CobraWalk walk(g, 0, 2);
    return static_cast<double>(sim::run_cover(walk, gen).rounds);
  };
  const auto a = sim::replicate(16, 999, trial);
  const auto b = sim::Runner().replicate(16, 999, trial);
  EXPECT_EQ(a.count, 16u);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.ci95_half, b.ci95_half);
}

TEST(Runner, CollisionDetectorSeesCoalescence) {
  // Two walkers on a tiny complete graph must eventually merge.
  const graph::Graph g = gen::build_graph("complete:n=4");
  core::Engine gen(3);
  std::vector<core::Vertex> starts = {0, 1, 2, 3};
  core::CoalescingWalks walks(g, starts);
  sim::CollisionDetector collisions;
  sim::Runner().run(
      walks, gen,
      sim::until([](const core::CoalescingWalks& w) {
        return w.walker_count() == 1;
      }),
      collisions);
  EXPECT_TRUE(collisions.collided());
  EXPECT_EQ(collisions.total_losses(), 3u);
  EXPECT_EQ(collisions.total_losses(), walks.merges());
}

}  // namespace
