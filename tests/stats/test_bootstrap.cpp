#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/summary.hpp"

namespace cobra::stats {
namespace {

TEST(Bootstrap, PointEstimateIsSampleStatistic) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const BootstrapCI ci = bootstrap_mean_ci(sample);
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
}

TEST(Bootstrap, IntervalBracketsPoint) {
  rng::Xoshiro256 gen(1);
  std::vector<double> sample(200);
  for (double& x : sample) x = rng::uniform_unit(gen);
  const BootstrapCI ci = bootstrap_mean_ci(sample);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_LT(ci.hi - ci.lo, 0.2);  // 200 uniforms: SEM ~ 0.02
}

TEST(Bootstrap, EmptySampleIsZero) {
  const BootstrapCI ci = bootstrap_mean_ci({});
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);
}

TEST(Bootstrap, SingleObservationCollapses) {
  const std::vector<double> one{5.0};
  const BootstrapCI ci = bootstrap_mean_ci(one);
  EXPECT_EQ(ci.lo, 5.0);
  EXPECT_EQ(ci.hi, 5.0);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  const std::vector<double> sample{1.0, 5.0, 3.0, 2.0, 4.0, 9.0};
  const BootstrapCI a = bootstrap_mean_ci(sample, 0.95, 500, 42);
  const BootstrapCI b = bootstrap_mean_ci(sample, 0.95, 500, 42);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  const BootstrapCI c = bootstrap_mean_ci(sample, 0.95, 500, 43);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);
}

TEST(Bootstrap, WiderLevelGivesWiderInterval) {
  rng::Xoshiro256 gen(2);
  std::vector<double> sample(100);
  for (double& x : sample) x = rng::uniform_unit(gen) * 10;
  const BootstrapCI ci90 = bootstrap_ci(
      sample, [](std::span<const double> s) { return mean_of(s); }, 0.90);
  const BootstrapCI ci99 = bootstrap_ci(
      sample, [](std::span<const double> s) { return mean_of(s); }, 0.99);
  EXPECT_GT(ci99.hi - ci99.lo, ci90.hi - ci90.lo);
}

TEST(Bootstrap, MedianCiOnSkewedData) {
  // Heavily right-skewed sample: median CI should sit near the low mass.
  std::vector<double> sample;
  for (int i = 0; i < 99; ++i) sample.push_back(1.0 + i * 0.01);
  sample.push_back(1000.0);
  const BootstrapCI ci = bootstrap_median_ci(sample);
  EXPECT_LT(ci.hi, 3.0);
  EXPECT_GT(ci.lo, 0.9);
}

TEST(Bootstrap, CoverageOfTrueMean) {
  // 95% CI should cover the true mean (0.5) in the large majority of reps.
  rng::Xoshiro256 gen(3);
  int covered = 0;
  for (int rep = 0; rep < 60; ++rep) {
    std::vector<double> sample(80);
    for (double& x : sample) x = rng::uniform_unit(gen);
    const BootstrapCI ci =
        bootstrap_mean_ci(sample, 0.95, 500, 1000 + static_cast<unsigned>(rep));
    if (ci.lo <= 0.5 && 0.5 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, 48);  // ~95% nominal, allow slack
}

}  // namespace
}  // namespace cobra::stats
