#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace cobra::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
}

TEST(Histogram, OfSampleSpansData) {
  const std::vector<double> sample{3.0, 7.0, 5.0, 4.0, 6.0};
  const Histogram h = Histogram::of(sample, 4);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OfDegenerateSample) {
  const std::vector<double> same{2.0, 2.0, 2.0};
  const Histogram h = Histogram::of(same, 3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(Histogram, OfEmptySample) {
  const Histogram h = Histogram::of({}, 3);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(1.7);
  h.add(2.5);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, RenderContainsCountsAndBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bin full width
  EXPECT_NE(out.find(" 2"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(Histogram, AddAll) {
  Histogram h(0.0, 1.0, 2);
  const std::vector<double> xs{0.1, 0.2, 0.7};
  h.add_all(xs);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
}

}  // namespace
}  // namespace cobra::stats
