#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::stats {
namespace {

TEST(FitLinear, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 24.0, 1e-12);
}

TEST(FitLinear, NoisyLineRecovered) {
  rng::Xoshiro256 gen(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    xs.push_back(x);
    ys.push_back(3.0 * x + 7.0 + (rng::uniform_unit(gen) - 0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_NEAR(fit.intercept, 7.0, 0.3);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.slope_stderr, 0.01);
}

TEST(FitLinear, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).count, 0u);
  const std::vector<double> one{1.0};
  EXPECT_EQ(fit_linear(one, one).count, 0u);
  // Zero x-variance.
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_EQ(fit.count, 0u);
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(FitLinear, PerfectlyFlat) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{4.0, 4.0, 4.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  // syy == 0: define R^2 = 1 (model explains all zero variance).
  EXPECT_EQ(fit.r_squared, 1.0);
}

TEST(FitPowerLaw, ExactPower) {
  std::vector<double> xs, ys;
  for (const double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(5.0 * std::pow(x, 1.5));
  }
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-10);
  EXPECT_NEAR(fit.prefactor, 5.0, 1e-8);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(256.0), 5.0 * std::pow(256.0, 1.5), 1e-6);
}

TEST(FitPowerLaw, LinearGrowthHasExponentOne) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i * 100.0);
    ys.push_back(i * 100.0 * 7.0);
  }
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.0, 1e-10);
}

TEST(FitPowerLaw, SkipsNonPositive) {
  const std::vector<double> xs{-1.0, 0.0, 2.0, 4.0, 8.0};
  const std::vector<double> ys{5.0, 5.0, 4.0, 8.0, 16.0};
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_EQ(fit.count, 3u);
  EXPECT_NEAR(fit.exponent, 1.0, 1e-10);
}

TEST(FitPowerLaw, NoisyExponentRecovered) {
  rng::Xoshiro256 gen(4);
  std::vector<double> xs, ys;
  for (int i = 4; i <= 12; ++i) {
    const double x = std::pow(2.0, i);
    // multiplicative noise +-10%
    const double noise = 1.0 + (rng::uniform_unit(gen) - 0.5) * 0.2;
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 2.0) * noise);
  }
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitPolylog, RecoversLogSquared) {
  std::vector<double> xs, ys;
  for (const double x : {1e2, 1e3, 1e4, 1e5, 1e6}) {
    xs.push_back(x);
    const double lx = std::log(x);
    ys.push_back(4.0 * lx * lx);
  }
  const PowerLawFit fit = fit_polylog(xs, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.prefactor, 4.0, 1e-6);
}

TEST(FitPolylog, SkipsXBelowE) {
  const std::vector<double> xs{0.5, 1.0, 10.0, 100.0, 1000.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(std::log(std::max(x, 1.1)));
  const PowerLawFit fit = fit_polylog(xs, ys);
  EXPECT_EQ(fit.count, 3u);
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
}

}  // namespace
}  // namespace cobra::stats
