#include "stats/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.hpp"

namespace cobra::stats {
namespace {

TEST(Sequential, ConvergesOnLowVarianceTrial) {
  par::ThreadPool pool(4);
  SequentialOptions options;
  options.relative_tolerance = 0.05;
  const auto result = run_until_precise(
      pool, options, [](rng::Xoshiro256& gen, std::uint32_t) {
        return 10.0 + rng::uniform_unit(gen);  // mean 10.5, tiny spread
      });
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.summary.mean, 10.5, 0.2);
  EXPECT_LE(result.summary.ci95_half, 0.05 * result.summary.mean);
  EXPECT_EQ(result.trials_used, options.initial_trials);  // first batch enough
}

TEST(Sequential, GrowsTrialsForNoisyTrial) {
  par::ThreadPool pool(4);
  SequentialOptions options;
  options.initial_trials = 8;
  options.batch_size = 8;
  options.relative_tolerance = 0.02;
  const auto result = run_until_precise(
      pool, options, [](rng::Xoshiro256& gen, std::uint32_t) {
        return rng::uniform_unit(gen) * 100.0;  // very noisy
      });
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.trials_used, 100u);  // needed many batches
  EXPECT_NEAR(result.summary.mean, 50.0, 3.0);
}

TEST(Sequential, RespectsMaxTrials) {
  par::ThreadPool pool(2);
  SequentialOptions options;
  options.initial_trials = 4;
  options.batch_size = 4;
  options.max_trials = 64;
  options.relative_tolerance = 1e-9;  // unreachable
  const auto result = run_until_precise(
      pool, options,
      [](rng::Xoshiro256& gen, std::uint32_t) { return rng::uniform_unit(gen); });
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.trials_used, 64u);
}

TEST(Sequential, AbsoluteToleranceStopsEarly) {
  par::ThreadPool pool(2);
  SequentialOptions options;
  options.absolute_tolerance = 50.0;  // generous absolute criterion
  options.relative_tolerance = 1e-9;  // relative alone would never stop
  options.max_trials = 256;
  const auto result = run_until_precise(
      pool, options, [](rng::Xoshiro256& gen, std::uint32_t) {
        return rng::uniform_unit(gen) * 10.0;
      });
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.summary.ci95_half, 50.0);
}

TEST(Sequential, DeterministicAcrossBatchSizes) {
  // The i-th trial's seed does not depend on batching, so the same
  // max_trials with an unreachable tolerance yields the same sample mean
  // regardless of batch size.
  par::ThreadPool pool(4);
  SequentialOptions small_batches, one_batch;
  small_batches.initial_trials = 4;
  small_batches.batch_size = 4;
  small_batches.max_trials = 64;
  small_batches.relative_tolerance = 1e-12;
  one_batch = small_batches;
  one_batch.initial_trials = 64;
  auto trial = [](rng::Xoshiro256& gen, std::uint32_t) {
    return rng::uniform_unit(gen);
  };
  const auto a = run_until_precise(pool, small_batches, trial);
  const auto b = run_until_precise(pool, one_batch, trial);
  EXPECT_EQ(a.trials_used, b.trials_used);
  EXPECT_DOUBLE_EQ(a.summary.mean, b.summary.mean);
}

TEST(Sequential, TrialIndexPassedThrough) {
  par::ThreadPool pool(2);
  SequentialOptions options;
  options.initial_trials = 16;
  options.relative_tolerance = 10.0;  // immediately precise
  std::vector<int> seen(16, 0);
  std::mutex m;
  const auto result = run_until_precise(
      pool, options, [&](rng::Xoshiro256&, std::uint32_t index) {
        const std::lock_guard lock(m);
        if (index < seen.size()) seen[index] = 1;
        return 1.0;
      });
  EXPECT_TRUE(result.converged);
  for (const int s : seen) EXPECT_EQ(s, 1);
}

}  // namespace
}  // namespace cobra::stats
