#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::stats {
namespace {

TEST(Welford, MeanAndVarianceExact) {
  Welford acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(Welford, SingleValue) {
  Welford acc;
  acc.add(3.5);
  EXPECT_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 3.5);
  EXPECT_EQ(acc.max(), 3.5);
}

TEST(Welford, NumericallyStableForLargeOffset) {
  // Classic catastrophic-cancellation case: tiny variance on huge mean.
  Welford acc;
  const double base = 1e12;
  for (int i = 0; i < 1000; ++i) acc.add(base + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(acc.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Welford, MergeMatchesSequential) {
  rng::Xoshiro256 gen(1);
  Welford all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng::uniform_unit(gen) * 10.0 - 5.0;
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  Welford b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0 / 3.0), 2.0);
}

TEST(QuantileSorted, EdgeCases) {
  EXPECT_EQ(quantile_sorted({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_EQ(quantile_sorted(one, 0.3), 7.0);
  const std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(two, 0.5), 2.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(quantile_sorted(two, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(two, 2.0), 3.0);
}

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_975(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_975(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_975(1000), 1.96, 1e-3);
}

TEST(TCritical, MonotoneDecreasing) {
  for (std::size_t dof = 1; dof < 200; ++dof) {
    EXPECT_GE(t_critical_975(dof), t_critical_975(dof + 1) - 1e-9) << dof;
  }
}

TEST(Summarize, FullSnapshot) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.sem, std::sqrt(2.5 / 5.0), 1e-12);
  EXPECT_NEAR(s.ci95_half, t_critical_975(4) * s.sem, 1e-12);
  EXPECT_LT(s.ci_lo(), s.mean);
  EXPECT_GT(s.ci_hi(), s.mean);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, CoversTrueMeanMostOfTheTime) {
  // With a 95% CI and 100 repetitions, expect ~95 covers; demand >= 85.
  rng::Xoshiro256 gen(9);
  int covers = 0;
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<double> sample(50);
    for (double& x : sample) x = rng::uniform_unit(gen);  // true mean 0.5
    const Summary s = summarize(sample);
    if (s.ci_lo() <= 0.5 && 0.5 <= s.ci_hi()) ++covers;
  }
  EXPECT_GE(covers, 85);
}

TEST(MeanOf, Basic) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
}

}  // namespace
}  // namespace cobra::stats
