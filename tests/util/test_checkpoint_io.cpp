// Tests for the checkpoint byte-stream layer: writer/reader round trips,
// bounds-checked reads over truncated/corrupt buffers, length-prefix
// overflow guards, and the canonical-vertex-list validator.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/checkpoint_io.hpp"

namespace {

using namespace cobra;
using util::CheckpointError;
using util::CheckpointReader;
using util::CheckpointWriter;

TEST(CheckpointIo, PrimitivesRoundTripInOrder) {
  CheckpointWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  const std::vector<std::uint32_t> verts = {1, 5, 900};
  w.u32_span(verts);
  const std::vector<std::uint64_t> longs = {42, 0, UINT64_MAX};
  w.u64_span(longs);
  const std::vector<std::uint8_t> blob = {0, 1, 2, 255};
  w.bytes(blob);

  CheckpointReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.u32_span(), verts);
  EXPECT_EQ(r.u64_span(), longs);
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.exhausted());
}

TEST(CheckpointIo, EveryTruncatedPrefixThrowsNotUb) {
  CheckpointWriter w;
  w.u64(7);
  w.u32_span(std::vector<std::uint32_t>{10, 20, 30});
  w.u8(1);
  const auto& full = w.buffer();
  // A reader over any strict prefix must hit a typed error somewhere
  // before successfully completing the full read sequence.
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + static_cast<std::ptrdiff_t>(len));
    CheckpointReader r(prefix);
    EXPECT_THROW(
        {
          (void)r.u64();
          (void)r.u32_span();
          (void)r.u8();
        },
        CheckpointError)
        << "prefix length " << len;
  }
}

TEST(CheckpointIo, HugeLengthPrefixIsRejectedBeforeAllocation) {
  // A corrupt count of 2^61 elements would overflow count*4 and/or dwarf
  // the buffer; both paths must throw instead of reserving.
  CheckpointWriter w;
  w.u64(UINT64_MAX / 2);
  CheckpointReader r(w.buffer());
  EXPECT_THROW((void)r.u32_span(), CheckpointError);

  CheckpointWriter w2;
  w2.u64(UINT64_MAX);  // count * 8 overflows outright
  CheckpointReader r2(w2.buffer());
  EXPECT_THROW((void)r2.u64_span(), CheckpointError);
}

TEST(CheckpointIo, SpanBodyShorterThanPrefixThrows) {
  CheckpointWriter w;
  w.u64(5);   // promises five u32s...
  w.u32(1);   // ...delivers one
  CheckpointReader r(w.buffer());
  EXPECT_THROW((void)r.u32_span(), CheckpointError);
}

TEST(CheckpointIo, Fnv1a64DistinguishesPayloads) {
  const std::vector<std::uint8_t> a = {1, 2, 3};
  const std::vector<std::uint8_t> b = {1, 2, 4};
  EXPECT_NE(util::fnv1a64(a), util::fnv1a64(b));
  // Empty input is the FNV offset basis (pins the parameterization).
  EXPECT_EQ(util::fnv1a64(std::vector<std::uint8_t>{}), 0xcbf29ce484222325ull);
}

TEST(CheckpointIo, CanonicalVertexValidation) {
  const std::vector<std::uint32_t> good = {0, 3, 7, 99};
  EXPECT_NO_THROW(util::require_canonical_vertices(good, 100, "t"));
  EXPECT_NO_THROW(util::require_canonical_vertices({}, 100, "t"));

  const std::vector<std::uint32_t> out_of_range = {0, 3, 100};
  EXPECT_THROW(util::require_canonical_vertices(out_of_range, 100, "t"),
               CheckpointError);
  const std::vector<std::uint32_t> duplicate = {0, 3, 3, 7};
  EXPECT_THROW(util::require_canonical_vertices(duplicate, 100, "t"),
               CheckpointError);
  const std::vector<std::uint32_t> descending = {7, 3};
  EXPECT_THROW(util::require_canonical_vertices(descending, 100, "t"),
               CheckpointError);
}

}  // namespace
