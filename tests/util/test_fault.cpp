// Tests for the fault-injection registry: disabled-by-default gating,
// deterministic fail-from-k-th-hit semantics, re-arm/disarm, and the
// COBRA_FAULT environment arming path benches use.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "util/fault.hpp"

namespace {

using namespace cobra;
namespace fault = util::fault;

/// Every test leaves the registry clean — a leaked armed site would make
/// unrelated suites fail their "real" I/O.
struct FaultTest : ::testing::Test {
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override {
    fault::disarm_all();
    ::unsetenv("COBRA_FAULT");
  }
};

TEST_F(FaultTest, DisabledByDefault) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("no.such.site"));
  EXPECT_EQ(fault::hits("checkpoint.write"), 0u);
  EXPECT_TRUE(fault::armed_sites().empty());
}

TEST_F(FaultTest, ArmedSiteFailsImmediatelyOthersDoNot) {
  fault::arm("checkpoint.write");
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("checkpoint.read"));
  EXPECT_EQ(fault::hits("checkpoint.write"), 1u);
}

TEST_F(FaultTest, AfterKFailsFromKthHitOnward) {
  fault::arm("frontier.dense_alloc", 2);
  EXPECT_FALSE(fault::should_fail("frontier.dense_alloc"));  // hit 0
  EXPECT_FALSE(fault::should_fail("frontier.dense_alloc"));  // hit 1
  EXPECT_TRUE(fault::should_fail("frontier.dense_alloc"));   // hit 2: fails
  EXPECT_TRUE(fault::should_fail("frontier.dense_alloc"));   // and forever on
  EXPECT_EQ(fault::hits("frontier.dense_alloc"), 4u);
}

TEST_F(FaultTest, RearmResetsTheHitCounter) {
  fault::arm("s", 1);
  EXPECT_FALSE(fault::should_fail("s"));
  EXPECT_TRUE(fault::should_fail("s"));
  fault::arm("s", 1);  // re-arm: counter back to zero
  EXPECT_EQ(fault::hits("s"), 0u);
  EXPECT_FALSE(fault::should_fail("s"));
  EXPECT_TRUE(fault::should_fail("s"));
}

TEST_F(FaultTest, DisarmAllRestoresTheCheapPath) {
  fault::arm("a");
  fault::arm("b", 5);
  EXPECT_TRUE(fault::enabled());
  fault::disarm_all();
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fail("a"));
  EXPECT_TRUE(fault::armed_sites().empty());
}

TEST_F(FaultTest, ArmFromEnvParsesSitesAndAfterCounts) {
  ::setenv("COBRA_FAULT", "checkpoint.write@3,frontier.dense_alloc", 1);
  EXPECT_EQ(fault::arm_from_env(), 2u);
  const auto armed = fault::armed_sites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "checkpoint.write@3"),
            armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "frontier.dense_alloc@0"),
            armed.end());
  // @3 semantics survive the env round trip.
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_TRUE(fault::should_fail("checkpoint.write"));
  EXPECT_TRUE(fault::should_fail("frontier.dense_alloc"));
}

TEST_F(FaultTest, ArmFromEnvSkipsMalformedEntries) {
  ::setenv("COBRA_FAULT", "good.site@1,bad@not_a_number,@5,,tail.site", 1);
  EXPECT_EQ(fault::arm_from_env(), 2u);  // good.site and tail.site only
  EXPECT_FALSE(fault::should_fail("bad"));
  EXPECT_TRUE(fault::should_fail("tail.site"));
}

TEST_F(FaultTest, ArmFromEnvUnsetArmsNothing) {
  ::unsetenv("COBRA_FAULT");
  EXPECT_EQ(fault::arm_from_env(), 0u);
  EXPECT_FALSE(fault::enabled());
}

}  // namespace
