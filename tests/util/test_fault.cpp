// Tests for the fault-injection registry: disabled-by-default gating,
// deterministic fail-from-k-th-hit semantics, re-arm/disarm, the
// COBRA_FAULT environment arming path benches use, the full plan grammar
// (@after %prob #limit), seeded probabilistic schedules, the firing event
// log, and the --fault-plan file format.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/fault.hpp"

namespace {

using namespace cobra;
namespace fault = util::fault;

/// Every test leaves the registry clean — a leaked armed site would make
/// unrelated suites fail their "real" I/O.
struct FaultTest : ::testing::Test {
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override {
    fault::disarm_all();
    ::unsetenv("COBRA_FAULT");
  }
};

TEST_F(FaultTest, DisabledByDefault) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("no.such.site"));
  EXPECT_EQ(fault::hits("checkpoint.write"), 0u);
  EXPECT_TRUE(fault::armed_sites().empty());
}

TEST_F(FaultTest, ArmedSiteFailsImmediatelyOthersDoNot) {
  fault::arm("checkpoint.write");
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("checkpoint.read"));
  EXPECT_EQ(fault::hits("checkpoint.write"), 1u);
}

TEST_F(FaultTest, AfterKFailsFromKthHitOnward) {
  fault::arm("frontier.dense_alloc", 2);
  EXPECT_FALSE(fault::should_fail("frontier.dense_alloc"));  // hit 0
  EXPECT_FALSE(fault::should_fail("frontier.dense_alloc"));  // hit 1
  EXPECT_TRUE(fault::should_fail("frontier.dense_alloc"));   // hit 2: fails
  EXPECT_TRUE(fault::should_fail("frontier.dense_alloc"));   // and forever on
  EXPECT_EQ(fault::hits("frontier.dense_alloc"), 4u);
}

TEST_F(FaultTest, RearmResetsTheHitCounter) {
  fault::arm("s", 1);
  EXPECT_FALSE(fault::should_fail("s"));
  EXPECT_TRUE(fault::should_fail("s"));
  fault::arm("s", 1);  // re-arm: counter back to zero
  EXPECT_EQ(fault::hits("s"), 0u);
  EXPECT_FALSE(fault::should_fail("s"));
  EXPECT_TRUE(fault::should_fail("s"));
}

TEST_F(FaultTest, DisarmAllRestoresTheCheapPath) {
  fault::arm("a");
  fault::arm("b", 5);
  EXPECT_TRUE(fault::enabled());
  fault::disarm_all();
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fail("a"));
  EXPECT_TRUE(fault::armed_sites().empty());
}

TEST_F(FaultTest, ArmFromEnvParsesSitesAndAfterCounts) {
  ::setenv("COBRA_FAULT", "checkpoint.write@3,frontier.dense_alloc", 1);
  EXPECT_EQ(fault::arm_from_env(), 2u);
  const auto armed = fault::armed_sites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "checkpoint.write@3"),
            armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "frontier.dense_alloc@0"),
            armed.end());
  // @3 semantics survive the env round trip.
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_FALSE(fault::should_fail("checkpoint.write"));
  EXPECT_TRUE(fault::should_fail("checkpoint.write"));
  EXPECT_TRUE(fault::should_fail("frontier.dense_alloc"));
}

TEST_F(FaultTest, ArmFromEnvSkipsMalformedEntries) {
  ::setenv("COBRA_FAULT", "good.site@1,bad@not_a_number,@5,,tail.site", 1);
  EXPECT_EQ(fault::arm_from_env(), 2u);  // good.site and tail.site only
  EXPECT_FALSE(fault::should_fail("bad"));
  EXPECT_TRUE(fault::should_fail("tail.site"));
}

TEST_F(FaultTest, ArmFromEnvUnsetArmsNothing) {
  ::unsetenv("COBRA_FAULT");
  EXPECT_EQ(fault::arm_from_env(), 0u);
  EXPECT_FALSE(fault::enabled());
}

// ------------------------------------------------------- plan grammar --

TEST_F(FaultTest, PlanParsesAllSuffixesInAnyOrder) {
  const auto plan = fault::FaultPlan::parse("a@3%0.5#2,b#1%0.25,c");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].site, "a");
  EXPECT_EQ(plan.specs[0].after, 3u);
  EXPECT_DOUBLE_EQ(plan.specs[0].prob, 0.5);
  EXPECT_EQ(plan.specs[0].limit, 2u);
  EXPECT_EQ(plan.specs[1].site, "b");
  EXPECT_DOUBLE_EQ(plan.specs[1].prob, 0.25);
  EXPECT_EQ(plan.specs[1].limit, 1u);
  EXPECT_EQ(plan.specs[2].site, "c");
  EXPECT_DOUBLE_EQ(plan.specs[2].prob, 1.0);
}

TEST_F(FaultTest, PlanRejectsMalformedEntries) {
  EXPECT_THROW((void)fault::FaultPlan::parse("@3"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("a@x"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("a%2.0"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("a%-0.5"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("a@1@2"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("a#"), std::invalid_argument);
}

TEST_F(FaultTest, PlanRenderRoundTrips) {
  const char* text = "a@3%0.5#2,b#1,c@1,d";
  const auto plan = fault::FaultPlan::parse(text);
  const auto again = fault::FaultPlan::parse(plan.render());
  ASSERT_EQ(again.specs.size(), plan.specs.size());
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    EXPECT_EQ(again.specs[i].site, plan.specs[i].site);
    EXPECT_EQ(again.specs[i].after, plan.specs[i].after);
    EXPECT_DOUBLE_EQ(again.specs[i].prob, plan.specs[i].prob);
    EXPECT_EQ(again.specs[i].limit, plan.specs[i].limit);
  }
}

TEST_F(FaultTest, LimitCapsTheFiringCount) {
  fault::arm_spec(fault::FaultPlan::parse("s#2").specs[0]);
  EXPECT_TRUE(fault::should_fail("s"));
  EXPECT_TRUE(fault::should_fail("s"));
  EXPECT_FALSE(fault::should_fail("s"));  // dormant after 2 firings
  EXPECT_FALSE(fault::should_fail("s"));
  EXPECT_EQ(fault::fired("s"), 2u);
  EXPECT_EQ(fault::hits("s"), 4u);
}

TEST_F(FaultTest, ProbabilisticScheduleIsAFunctionOfPlanAndSeed) {
  const auto schedule_of = [](std::uint64_t seed) {
    fault::disarm_all();
    fault::FaultPlan plan = fault::FaultPlan::parse("p%0.5");
    plan.seed = seed;
    fault::arm_plan(plan);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(fault::should_fail("p"));
    fault::disarm_all();
    return fires;
  };
  const auto a = schedule_of(41);
  const auto b = schedule_of(41);
  EXPECT_EQ(a, b);  // same (plan, seed) -> bit-identical schedule
  const auto c = schedule_of(42);
  EXPECT_NE(a, c);  // a different seed gives a different schedule
  const auto fired_count = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired_count, 10u);  // ~32 expected; bound loose on purpose
  EXPECT_LT(fired_count, 54u);
}

TEST_F(FaultTest, EventLogRecordsSiteHitAndFiringOrdinal) {
  fault::arm_spec(fault::FaultPlan::parse("e@1#2").specs[0]);
  for (int i = 0; i < 5; ++i) (void)fault::should_fail("e");
  const auto events = fault::events();
  ASSERT_EQ(events.size(), 2u);  // hits 1 and 2 fired (limit 2)
  EXPECT_EQ(events[0].site, "e");
  EXPECT_EQ(events[0].hit, 1u);
  EXPECT_EQ(events[0].fire, 1u);
  EXPECT_EQ(events[1].hit, 2u);
  EXPECT_EQ(events[1].fire, 2u);
}

TEST_F(FaultTest, EventLogStampsTheRoundClock) {
  fault::arm("r");
  fault::tick_round();
  fault::tick_round();
  (void)fault::should_fail("r");
  const auto events = fault::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].round, 2u);
  fault::disarm_all();  // resets the clock
  EXPECT_EQ(fault::current_round(), 0u);
}

TEST_F(FaultTest, ArmPlanFileParsesEntriesSeedAndComments) {
  const std::string path = ::testing::TempDir() + "fault_plan.txt";
  {
    std::ofstream out(path);
    out << "# a reproducer written by cobra_chaos\n";
    out << "seed=99\n";
    out << "file.a@2%0.5#3\n";
    out << "\n";
    out << "file.b,file.c@1\n";
  }
  EXPECT_EQ(fault::arm_plan_file(path), 3u);
  const auto armed = fault::armed_sites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "file.a@2%0.5#3"),
            armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "file.b@0"), armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "file.c@1"), armed.end());
  std::remove(path.c_str());
}

TEST_F(FaultTest, ArmPlanFileThrowsOnMissingOrMalformedFile) {
  EXPECT_THROW((void)fault::arm_plan_file("/no/such/fault_plan.txt"),
               std::invalid_argument);
  const std::string path = ::testing::TempDir() + "bad_plan.txt";
  {
    std::ofstream out(path);
    out << "site@not_a_number\n";
  }
  EXPECT_THROW((void)fault::arm_plan_file(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST_F(FaultTest, CobraFaultSeedEnvSeedsTheStreams) {
  ::setenv("COBRA_FAULT", "env.p%0.5", 1);
  ::setenv("COBRA_FAULT_SEED", "7", 1);
  EXPECT_EQ(fault::arm_from_env(), 1u);
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i) first.push_back(fault::should_fail("env.p"));
  fault::disarm_all();
  EXPECT_EQ(fault::arm_from_env(), 1u);  // same env -> same schedule
  std::vector<bool> second;
  for (int i = 0; i < 32; ++i) second.push_back(fault::should_fail("env.p"));
  EXPECT_EQ(first, second);
  ::unsetenv("COBRA_FAULT_SEED");
}

// Queries of a DISARMED registry race-free against disarm_all: the
// fast-path gate is one relaxed atomic load, so a should_fail() spinning
// thread and a disarm_all() thread must be clean under TSan (the
// COBRA_SANITIZE=thread lane runs this suite).
TEST_F(FaultTest, DisarmAllRacesCleanlyWithDisarmedQueries) {
  std::atomic<bool> stop{false};
  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)fault::should_fail("race.site");
    }
  });
  for (int i = 0; i < 200; ++i) {
    fault::arm("race.other");  // never the queried site
    fault::disarm_all();
  }
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  EXPECT_FALSE(fault::enabled());
}

}  // namespace
