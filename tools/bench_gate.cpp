/// bench_gate — the ROADMAP's regression gate: diff a freshly produced
/// bench JSON (JsonReporter schema) or cobra_sweep merged file against a
/// checked-in baseline (the BENCH_*.json trajectory) and fail when numeric
/// record fields drift outside a relative slack.
///
/// Usage:
///   bench_gate --baseline BENCH_foo.json --candidate fresh.json
///              [--slack 0.05] [--time-slack S] [--report report.json]
///
///   --baseline   the checked-in reference file (bench or sweep format)
///   --candidate  the fresh run to judge (same format auto-detection)
///   --slack      two-sided relative tolerance for value fields
///                (default 0.05)
///   --time-slack opt IN to gating timing fields (names containing
///                per_sec / seconds / speedup / throughput / time) at this
///                tolerance; without it they are skipped, so a checked-in
///                baseline gates semantics on any host while perf gating
///                stays a deliberate same-host decision
///   --report     also write the machine-readable verdict JSON here
///
/// Exit codes: 0 = gate passed, 1 = gate FAILED (regression, missing
/// record/field), 2 = usage or input error (unreadable file, malformed
/// JSON, bad flag).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "gate.hpp"
#include "io/args.hpp"

namespace {

using namespace cobra;

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_gate: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

double double_flag_or_die(const io::Args& args, const std::string& name,
                          double fallback) {
  try {
    const double value = args.get_double(name, fallback);
    if (value < 0.0) throw std::invalid_argument("negative");
    return value;
  } catch (const std::invalid_argument&) {
    std::cerr << "bench_gate: --" << name << " '" << args.get(name, "")
              << "' is not a non-negative number\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  io::Args args(0, nullptr, {});
  try {
    args = io::Args(argc, argv,
                    {"baseline", "candidate", "slack", "time-slack", "report"});
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_gate: " << e.what()
              << "\nusage: bench_gate --baseline FILE --candidate FILE"
                 " [--slack 0.05] [--time-slack S] [--report FILE]\n";
    return 2;
  }
  if (!args.has("baseline") || !args.has("candidate")) {
    std::cerr << "bench_gate: --baseline and --candidate are required\n";
    return 2;
  }

  bench::GateConfig config;
  config.slack = double_flag_or_die(args, "slack", 0.05);
  if (args.has("time-slack")) {
    config.gate_time = true;
    config.time_slack = double_flag_or_die(args, "time-slack", 0.0);
  }

  const std::string baseline = read_file_or_die(args.get("baseline", ""));
  const std::string candidate = read_file_or_die(args.get("candidate", ""));
  bench::GateReport report;
  try {
    report = bench::run_gate(baseline, candidate, config);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_gate: " << e.what() << "\n";
    return 2;
  }

  if (args.has("report")) {
    std::ofstream out(args.get("report", ""));
    out << bench::render_gate_report(report, config);
    out.flush();
    if (!out) {
      std::cerr << "bench_gate: cannot write " << args.get("report", "")
                << "\n";
      return 2;
    }
  }

  for (const auto& issue : report.issues) {
    std::cerr << "bench_gate: " << issue.kind << "  record="
              << issue.record;
    if (!issue.field.empty()) {
      std::cerr << "  field=" << issue.field << "  baseline="
                << issue.baseline << "  candidate=" << issue.candidate
                << "  rel_delta=" << issue.rel_delta << " (allowed "
                << issue.allowed << ")";
    }
    std::cerr << "\n";
  }
  std::cout << "bench_gate: " << (report.pass ? "PASS" : "FAIL") << " ("
            << report.records_compared << " records, "
            << report.fields_compared << " fields compared, "
            << report.time_fields_skipped << " timing fields skipped)\n";
  return report.pass ? 0 : 1;
}
