/// cobra_chaos — the deterministic chaos fuzzer: drives randomized seeded
/// fault schedules through in-process cobra walks and asserts the fault
/// registry's site contract (bench/chaos.hpp): GRACEFUL degradations keep
/// trajectories bit-identical, HARD faults fail loudly. Violating
/// schedules are delta-debugged to a minimal reproducer printed in the
/// --fault-plan replay format.
///
/// Usage:
///   cobra_chaos [--process NAME] [--graph SPECS] [--threads LIST]
///               [--schedules N] [--seed S] [--rounds R] [--branching K]
///               [--trace FILE] [--out FILE]
///               [--inject-bug] [--expect-violation]
///
///   --process    which process runs under the fuzz: "cobra" (growing
///                frontier, expand rounds; default) or "mis" (greedy MIS —
///                shrinking frontier, expand + retain rounds)
///   --graph      spec list (cobra_sweep split rules); default two small
///                expanders
///   --threads    thread-count list, default "1,2"
///   --schedules  randomized fault plans per (spec, threads) cell
///                (default 50)
///   --seed       master seed — every schedule and walk seed derives from
///                it, so a run is reproducible bit-for-bit (default 1)
///   --rounds     rounds per trajectory (default 24)
///   --branching  cobra-walk k (default 2; unused by --process mis)
///   --trace      arm the obs trace sink: fault firings land as
///                {"fault": ...} JSONL lines — the chaos run's event-log
///                artifact
///   --out        also write the report text here
///   --scratch    scratch snapshot path for the checkpoint hard-site
///                checks (default chaos_scratch.snap in the cwd; give
///                each concurrent run its own)
///   --inject-bug add the TEST-ONLY chaos.degrade_bug site to the fuzz
///                catalog (a deliberately broken degradation)
///   --expect-violation  self-test mode: exit 0 IFF at least one violation
///                was found AND every shrunk reproducer has <= 2 entries —
///                how CI proves the fuzzer catches and shrinks a planted
///                bug (pair with --inject-bug)
///
/// Exit codes: 0 = contract holds (or, under --expect-violation, the
/// planted bug was caught and shrunk), 1 = violations found (or expected
/// one missing), 2 = usage error.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "chaos.hpp"
#include "core/audit.hpp"
#include "io/args.hpp"
#include "obs/trace.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace cobra;
  io::Args args(0, nullptr, {});
  try {
    args = io::Args(argc, argv,
                    {"process", "graph", "threads", "schedules", "seed",
                     "rounds", "branching", "trace", "out", "scratch",
                     "inject-bug", "expect-violation"});
  } catch (const std::invalid_argument& e) {
    std::cerr << "cobra_chaos: " << e.what()
              << "\nusage: cobra_chaos [--process cobra|mis] [--graph SPECS]"
                 " [--threads LIST] [--schedules N] [--seed S] [--rounds R]"
                 " [--branching K] [--trace FILE] [--out FILE] [--inject-bug]"
                 " [--expect-violation]\n";
    return 2;
  }

  // COBRA_AUDIT=0|1|2 arms the engine's invariant auditor for every
  // trajectory the fuzz runs — the chaos-under-audit ctest lane relies on
  // this (expand AND retain rounds are checked at level 2).
  core::audit::arm_from_env();

  bench::ChaosConfig config;
  try {
    config.process = args.get("process", config.process);
    config.specs = bench::split_spec_list(
        args.get("graph", "rreg:n=256,d=4,seed=7;ring:n=128"));
    config.threads = bench::split_uint_list(args.get("threads", "1,2"));
    config.schedules = args.get_uint("schedules", 50);
    config.seed = args.get_uint("seed", 1);
    config.rounds = args.get_uint("rounds", 24);
    config.branching = static_cast<std::uint32_t>(args.get_uint("branching", 2));
    config.inject_bug = args.get_bool("inject-bug", false);
    config.scratch_path = args.get("scratch", config.scratch_path);
  } catch (const std::invalid_argument& e) {
    std::cerr << "cobra_chaos: " << e.what() << "\n";
    return 2;
  }
  if (config.specs.empty() || config.threads.empty()) {
    std::cerr << "cobra_chaos: --graph and --threads must be non-empty\n";
    return 2;
  }
  if (args.has("trace")) {
    obs::open_global_trace(args.get("trace", ""));
  }

  bench::ChaosReport report;
  try {
    report = bench::run_chaos(config);
  } catch (const std::exception& e) {
    std::cerr << "cobra_chaos: " << e.what() << "\n";
    return 2;
  }

  const std::string rendered = bench::render_chaos_report(report, config);
  std::cout << rendered;
  if (args.has("out")) {
    std::ofstream out(args.get("out", ""));
    out << rendered;
    out.flush();
    if (!out) {
      std::cerr << "cobra_chaos: cannot write " << args.get("out", "") << "\n";
      return 2;
    }
  }

  if (args.get_bool("expect-violation", false)) {
    if (report.violations.empty()) {
      std::cerr << "cobra_chaos: expected a violation but the contract held "
                   "— the fuzzer failed to catch the planted bug\n";
      return 1;
    }
    for (const auto& v : report.violations) {
      if (v.shrunk.specs.size() > 2) {
        std::cerr << "cobra_chaos: reproducer did not shrink (plan '"
                  << v.shrunk.render() << "' has "
                  << v.shrunk.specs.size() << " entries, want <= 2)\n";
        return 1;
      }
    }
    std::cout << "cobra_chaos: planted bug caught and shrunk as expected\n";
    return 0;
  }
  return report.violations.empty() ? 0 : 1;
}
