/// cobra_lint — the determinism & concurrency static-analysis pass: scan
/// src/, bench/, and tools/ for the rule catalog in src/lint/rules.hpp
/// (nondeterminism sources, iteration-order hazards, RNG discipline,
/// atomic memory orders, layering) and fail on any finding that is
/// neither annotated in-source nor grandfathered in a baseline.
///
/// Usage:
///   cobra_lint --root REPO [--paths src,bench,tools]
///              [--baseline FILE] [--write-baseline FILE]
///              [--json FILE] [--quiet]
///
///   --root            repo root to scan (the directory holding src/)
///   --paths           comma-separated roots relative to --root
///                     (default src,bench,tools)
///   --baseline        grandfathered-findings file; matched findings are
///                     reported as "known" and do not fail the run
///   --write-baseline  write the current findings as a new baseline and
///                     exit 0 (the escape hatch when adopting the linter
///                     on a tree with known debt — this repo keeps an
///                     empty baseline and annotates instead)
///   --json            also write machine-readable findings here
///   --quiet           suppress the human table on success
///
/// Exit codes: 0 = clean (no unbaselined findings), 1 = fresh findings,
/// 2 = usage or I/O error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "io/args.hpp"
#include "lint/lint.hpp"

namespace {

using namespace cobra;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) out.push_back(item);
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  io::Args args(0, nullptr, {});
  try {
    args = io::Args(argc, argv, {"root", "paths", "baseline",
                                 "write-baseline", "json", "quiet"});
  } catch (const std::invalid_argument& e) {
    std::cerr << "cobra_lint: " << e.what()
              << "\nusage: cobra_lint --root REPO [--paths src,bench,tools]"
                 " [--baseline FILE] [--write-baseline FILE] [--json FILE]"
                 " [--quiet]\n";
    return 2;
  }
  if (!args.has("root")) {
    std::cerr << "cobra_lint: --root is required\n";
    return 2;
  }
  const std::string root = args.get("root", ".");
  const std::vector<std::string> paths =
      split_csv(args.get("paths", "src,bench,tools"));

  std::vector<lint::Finding> findings;
  try {
    findings = lint::lint_tree(root, paths);
  } catch (const std::exception& e) {
    std::cerr << "cobra_lint: " << e.what() << "\n";
    return 2;
  }

  if (args.has("write-baseline")) {
    const std::string path = args.get("write-baseline", "");
    std::ofstream out(path);
    out << lint::render_baseline(findings);
    out.flush();
    if (!out) {
      std::cerr << "cobra_lint: cannot write " << path << "\n";
      return 2;
    }
    std::cout << "cobra_lint: wrote baseline (" << findings.size()
              << " findings) to " << path << "\n";
    return 0;
  }

  std::string baseline_text;
  if (args.has("baseline")) {
    std::ifstream in(args.get("baseline", ""));
    if (!in) {
      std::cerr << "cobra_lint: cannot read baseline "
                << args.get("baseline", "") << "\n";
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    baseline_text = os.str();
  }
  const lint::BaselineSplit split =
      lint::apply_baseline(findings, baseline_text);

  if (args.has("json")) {
    const std::string path = args.get("json", "");
    std::ofstream out(path);
    out << lint::render_findings_json(split);
    out.flush();
    if (!out) {
      std::cerr << "cobra_lint: cannot write " << path << "\n";
      return 2;
    }
  }

  const bool clean = split.fresh.empty();
  if (!clean || !args.get_bool("quiet", false)) {
    std::cout << lint::render_findings_table(split);
  }
  std::cout << "cobra_lint: " << (clean ? "PASS" : "FAIL") << "\n";
  return clean ? 0 : 1;
}
